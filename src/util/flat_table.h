// Copyright 2026 The MinoanER Authors.
// Flat open-addressing hash tables for uint64 pair keys and POD values.
//
// Every per-pair structure on the progressive hot path (likelihood and
// evidence tables, the executed set, the scheduler's live map, the online
// PairState map) is keyed by a packed PairKey (util/hash.h) and holds a
// small POD payload. std::unordered_map spends a heap allocation and a
// pointer chase per entry on exactly these lookups; FlatPairMap/FlatPairSet
// replace that with one contiguous slot array, a Mix64 probe over a
// power-of-two capacity, and linear probing — the whole entry lives in the
// probed cache line.
//
// Deletion is tombstone-free: Erase backward-shifts the displaced run, so
// probe sequences never degrade and Clear needs no generation counters.
//
// Determinism contract: iteration order (ForEach) is an implementation
// detail of the probe layout and MUST never become observable — callers
// that serialize or compare contents canonicalize into ascending-key order
// first, exactly as they did over std::unordered_map. All serialization
// paths in this repo already do so.
//
// Reserved key: ~0 (all ones) marks empty slots. A packed pair key of two
// dense entity ids never produces it (ids are < num_entities <= 2^32 - 1),
// which is asserted, not silently mishandled.

#ifndef MINOAN_UTIL_FLAT_TABLE_H_
#define MINOAN_UTIL_FLAT_TABLE_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/hash.h"

namespace minoan {

namespace flat_internal {

/// Smallest power-of-two capacity that keeps `n` entries under the 0.7
/// load-factor ceiling (the same discipline as StringInterner).
inline size_t CapacityFor(size_t n) {
  size_t capacity = 16;
  while (capacity * 7 < n * 10) capacity <<= 1;
  return capacity;
}

}  // namespace flat_internal

/// Open-addressing map from uint64 pair keys to a POD value. See the file
/// comment for the layout and determinism contract.
template <typename Value>
class FlatPairMap {
  static_assert(std::is_trivially_copyable_v<Value> &&
                    std::is_trivially_destructible_v<Value>,
                "FlatPairMap holds POD values only");

 public:
  /// Reserved key marking empty slots; never a valid packed pair key.
  static constexpr uint64_t kEmptyKey = ~uint64_t{0};

  FlatPairMap() = default;

  /// Ensures `n` entries fit without rehashing.
  void Reserve(size_t n) {
    const size_t capacity = flat_internal::CapacityFor(n);
    if (capacity > slots_.size()) Rehash(capacity);
  }

  /// Pointer to the value of `key`, or nullptr when absent. Invalidated by
  /// any mutation.
  Value* Find(uint64_t key) {
    return const_cast<Value*>(std::as_const(*this).Find(key));
  }
  const Value* Find(uint64_t key) const {
    assert(key != kEmptyKey);
    if (size_ == 0) return nullptr;
    const size_t mask = slots_.size() - 1;
    for (size_t i = Mix64(key) & mask;; i = (i + 1) & mask) {
      if (slots_[i].key == key) return &slots_[i].value;
      if (slots_[i].key == kEmptyKey) return nullptr;
    }
  }

  bool Contains(uint64_t key) const { return Find(key) != nullptr; }

  /// Value of `key`, value-initializing (zeroing) it on first sight.
  /// `created` (optional) reports whether this was an insertion. The
  /// reference is invalidated by any subsequent mutation.
  Value& FindOrInsert(uint64_t key, bool* created = nullptr) {
    assert(key != kEmptyKey);
    GrowIfNeeded();
    const size_t mask = slots_.size() - 1;
    size_t i = Mix64(key) & mask;
    while (slots_[i].key != kEmptyKey && slots_[i].key != key) {
      i = (i + 1) & mask;
    }
    const bool inserted = slots_[i].key == kEmptyKey;
    if (inserted) {
      slots_[i].key = key;
      slots_[i].value = Value{};
      ++size_;
    }
    if (created != nullptr) *created = inserted;
    return slots_[i].value;
  }

  /// Inserts `key` or overwrites its existing value.
  void InsertOrAssign(uint64_t key, const Value& value) {
    FindOrInsert(key) = value;
  }

  /// Removes `key`, backward-shifting the displaced probe run so no
  /// tombstone is left behind. Returns whether the key was present.
  bool Erase(uint64_t key) {
    assert(key != kEmptyKey);
    if (size_ == 0) return false;
    const size_t mask = slots_.size() - 1;
    size_t i = Mix64(key) & mask;
    while (slots_[i].key != key) {
      if (slots_[i].key == kEmptyKey) return false;
      i = (i + 1) & mask;
    }
    // Backward-shift deletion: pull forward every entry of the collision
    // run that would become unreachable through the hole at i.
    size_t hole = i;
    for (size_t j = (hole + 1) & mask;; j = (j + 1) & mask) {
      if (slots_[j].key == kEmptyKey) break;
      const size_t home = Mix64(slots_[j].key) & mask;
      // Move j into the hole unless its home lies strictly inside
      // (hole, j] — then the probe path from home to j never crosses the
      // hole and the entry must stay put.
      if (((j - home) & mask) >= ((j - hole) & mask)) {
        slots_[hole] = slots_[j];
        hole = j;
      }
    }
    slots_[hole].key = kEmptyKey;
    --size_;
    return true;
  }

  /// Drops every entry, retaining capacity.
  void Clear() {
    for (Slot& slot : slots_) slot.key = kEmptyKey;
    size_ = 0;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Slot count of the backing array (diagnostics / benches).
  size_t capacity() const { return slots_.size(); }

  /// Calls fn(key, const Value&) for every entry in UNSPECIFIED order —
  /// canonicalize (sort by key) before any order-sensitive use.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.key != kEmptyKey) fn(slot.key, slot.value);
    }
  }

 private:
  struct Slot {
    uint64_t key;
    Value value;
  };

  void GrowIfNeeded() {
    if (slots_.empty()) {
      Rehash(16);
    } else if ((size_ + 1) * 10 > slots_.size() * 7) {
      Rehash(slots_.size() * 2);
    }
  }

  void Rehash(size_t new_capacity) {
    assert((new_capacity & (new_capacity - 1)) == 0);
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{kEmptyKey, Value{}});
    const size_t mask = new_capacity - 1;
    for (const Slot& slot : old) {
      if (slot.key == kEmptyKey) continue;
      size_t i = Mix64(slot.key) & mask;
      while (slots_[i].key != kEmptyKey) i = (i + 1) & mask;
      slots_[i] = slot;
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
};

/// Open-addressing set of uint64 pair keys: FlatPairMap without the
/// payload, same probe discipline and contract.
class FlatPairSet {
 public:
  static constexpr uint64_t kEmptyKey = ~uint64_t{0};

  FlatPairSet() = default;

  void Reserve(size_t n) {
    const size_t capacity = flat_internal::CapacityFor(n);
    if (capacity > keys_.size()) Rehash(capacity);
  }

  bool Contains(uint64_t key) const {
    assert(key != kEmptyKey);
    if (size_ == 0) return false;
    const size_t mask = keys_.size() - 1;
    for (size_t i = Mix64(key) & mask;; i = (i + 1) & mask) {
      if (keys_[i] == key) return true;
      if (keys_[i] == kEmptyKey) return false;
    }
  }

  /// Inserts `key`; returns whether it was newly added.
  bool Insert(uint64_t key) {
    assert(key != kEmptyKey);
    GrowIfNeeded();
    const size_t mask = keys_.size() - 1;
    size_t i = Mix64(key) & mask;
    while (keys_[i] != kEmptyKey) {
      if (keys_[i] == key) return false;
      i = (i + 1) & mask;
    }
    keys_[i] = key;
    ++size_;
    return true;
  }

  /// Removes `key` with backward-shift deletion. Returns whether present.
  bool Erase(uint64_t key) {
    assert(key != kEmptyKey);
    if (size_ == 0) return false;
    const size_t mask = keys_.size() - 1;
    size_t i = Mix64(key) & mask;
    while (keys_[i] != key) {
      if (keys_[i] == kEmptyKey) return false;
      i = (i + 1) & mask;
    }
    size_t hole = i;
    for (size_t j = (hole + 1) & mask;; j = (j + 1) & mask) {
      if (keys_[j] == kEmptyKey) break;
      const size_t home = Mix64(keys_[j]) & mask;
      if (((j - home) & mask) >= ((j - hole) & mask)) {
        keys_[hole] = keys_[j];
        hole = j;
      }
    }
    keys_[hole] = kEmptyKey;
    --size_;
    return true;
  }

  void Clear() {
    for (uint64_t& key : keys_) key = kEmptyKey;
    size_ = 0;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return keys_.size(); }

  /// Calls fn(key) for every key in UNSPECIFIED order — sort before any
  /// order-sensitive use.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const uint64_t key : keys_) {
      if (key != kEmptyKey) fn(key);
    }
  }

 private:
  void GrowIfNeeded() {
    if (keys_.empty()) {
      Rehash(16);
    } else if ((size_ + 1) * 10 > keys_.size() * 7) {
      Rehash(keys_.size() * 2);
    }
  }

  void Rehash(size_t new_capacity) {
    assert((new_capacity & (new_capacity - 1)) == 0);
    std::vector<uint64_t> old = std::move(keys_);
    keys_.assign(new_capacity, kEmptyKey);
    const size_t mask = new_capacity - 1;
    for (const uint64_t key : old) {
      if (key == kEmptyKey) continue;
      size_t i = Mix64(key) & mask;
      while (keys_[i] != kEmptyKey) i = (i + 1) & mask;
      keys_[i] = key;
    }
  }

  std::vector<uint64_t> keys_;
  size_t size_ = 0;
};

}  // namespace minoan

#endif  // MINOAN_UTIL_FLAT_TABLE_H_
