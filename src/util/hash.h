// Copyright 2026 The MinoanER Authors.
// Hashing helpers shared by interner, blocking, and MapReduce partitioners.

#ifndef MINOAN_UTIL_HASH_H_
#define MINOAN_UTIL_HASH_H_

#include <cstdint>
#include <cstddef>
#include <string_view>

namespace minoan {

/// 64-bit FNV-1a over bytes. Stable across platforms and runs — block keys,
/// MapReduce partitions, and generator decisions all depend on this, so it
/// must never be replaced by std::hash (which is allowed to vary per process).
inline uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Finalizing mixer (murmur3 fmix64): turns a structured integer into a
/// well-distributed hash.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// boost-style combine for building composite hashes.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (Mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                 (seed >> 2));
}

/// Canonical hash of an unordered entity pair: symmetric in (a, b).
inline uint64_t PairHash(uint32_t a, uint32_t b) {
  if (a > b) {
    uint32_t t = a;
    a = b;
    b = t;
  }
  return Mix64((static_cast<uint64_t>(a) << 32) | b);
}

/// Packs an ordered pair (a < b enforced) into one 64-bit key; used as the
/// identity of a comparison throughout blocking/meta-blocking/scheduling.
inline uint64_t PairKey(uint32_t a, uint32_t b) {
  if (a > b) {
    uint32_t t = a;
    a = b;
    b = t;
  }
  return (static_cast<uint64_t>(a) << 32) | b;
}

inline uint32_t PairKeyFirst(uint64_t key) {
  return static_cast<uint32_t>(key >> 32);
}
inline uint32_t PairKeySecond(uint64_t key) {
  return static_cast<uint32_t>(key & 0xffffffffULL);
}

}  // namespace minoan

#endif  // MINOAN_UTIL_HASH_H_
