#include "util/interner.h"

#include <cassert>
#include <cstring>

namespace minoan {

namespace {
constexpr size_t kInitialBuckets = 1024;  // power of two
}  // namespace

StringInterner::StringInterner() {
  buckets_.assign(kInitialBuckets, kInternNotFound);
  bucket_mask_ = kInitialBuckets - 1;
  arena_.reserve(1 << 16);
}

bool StringInterner::Equals(const Slice& slice, std::string_view s,
                            uint64_t hash) const {
  return slice.hash == hash && slice.length == s.size() &&
         std::memcmp(arena_.data() + slice.offset, s.data(), s.size()) == 0;
}

uint32_t StringInterner::Intern(std::string_view s) {
  const uint64_t hash = Fnv1a64(s);
  size_t idx = hash & bucket_mask_;
  while (buckets_[idx] != kInternNotFound) {
    if (Equals(slices_[buckets_[idx]], s, hash)) return buckets_[idx];
    idx = (idx + 1) & bucket_mask_;
  }
  const uint32_t id = static_cast<uint32_t>(slices_.size());
  slices_.push_back(Slice{arena_.size(), static_cast<uint32_t>(s.size()),
                          hash});
  arena_.append(s.data(), s.size());
  buckets_[idx] = id;
  // Grow at 70% load.
  if (slices_.size() * 10 > buckets_.size() * 7) {
    Rehash(buckets_.size() * 2);
  }
  return id;
}

uint32_t StringInterner::Find(std::string_view s) const {
  const uint64_t hash = Fnv1a64(s);
  size_t idx = hash & bucket_mask_;
  while (buckets_[idx] != kInternNotFound) {
    if (Equals(slices_[buckets_[idx]], s, hash)) return buckets_[idx];
    idx = (idx + 1) & bucket_mask_;
  }
  return kInternNotFound;
}

void StringInterner::Rehash(size_t new_buckets) {
  assert((new_buckets & (new_buckets - 1)) == 0 && "bucket count power of 2");
  buckets_.assign(new_buckets, kInternNotFound);
  bucket_mask_ = new_buckets - 1;
  for (uint32_t id = 0; id < slices_.size(); ++id) {
    size_t idx = slices_[id].hash & bucket_mask_;
    while (buckets_[idx] != kInternNotFound) idx = (idx + 1) & bucket_mask_;
    buckets_[idx] = id;
  }
}

}  // namespace minoan
