// Copyright 2026 The MinoanER Authors.
// String interning: maps each distinct string to a dense uint32 id.
//
// Every hot structure in MinoanER (blocks, graphs, schedulers) works on dense
// integer ids; strings (tokens, IRIs, predicates) are interned exactly once at
// ingestion. Lookup is a single open-addressing probe over precomputed FNV
// hashes; storage is an arena of concatenated bytes plus (offset, length)
// slices, so 10M tokens cost ~2 cache lines per lookup and no per-string
// allocation.

#ifndef MINOAN_UTIL_INTERNER_H_
#define MINOAN_UTIL_INTERNER_H_

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "util/hash.h"

namespace minoan {

/// Sentinel returned by `Find` for absent strings.
inline constexpr uint32_t kInternNotFound =
    std::numeric_limits<uint32_t>::max();

/// Append-only string→dense-id dictionary. Not thread-safe; parallel
/// pipelines intern in a sequential ingestion phase or per-worker and merge.
class StringInterner {
 public:
  StringInterner();

  /// Returns the id of `s`, inserting it if new. Ids are assigned densely in
  /// first-seen order starting at 0.
  uint32_t Intern(std::string_view s);

  /// Returns the id of `s` or kInternNotFound when absent.
  uint32_t Find(std::string_view s) const;

  /// Returns the string for a previously returned id.
  std::string_view View(uint32_t id) const {
    const Slice& sl = slices_[id];
    return std::string_view(arena_.data() + sl.offset, sl.length);
  }

  uint32_t size() const { return static_cast<uint32_t>(slices_.size()); }
  bool empty() const { return slices_.empty(); }

  /// Total bytes of interned string data (diagnostics).
  size_t arena_bytes() const { return arena_.size(); }

 private:
  struct Slice {
    uint64_t offset;
    uint32_t length;
    uint64_t hash;
  };

  void Rehash(size_t new_buckets);
  bool Equals(const Slice& slice, std::string_view s, uint64_t hash) const;

  std::string arena_;
  std::vector<Slice> slices_;          // id -> slice
  std::vector<uint32_t> buckets_;      // open addressing; kInternNotFound=empty
  size_t bucket_mask_ = 0;
};

}  // namespace minoan

#endif  // MINOAN_UTIL_INTERNER_H_
