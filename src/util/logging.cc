#include "util/logging.h"

#include <cstdio>
#include <cstring>
#include <mutex>

namespace minoan {
namespace {

std::mutex& SinkMutex() {
  static std::mutex mu;
  return mu;
}

void DefaultSink(LogLevel level, std::string_view message) {
  std::fprintf(stderr, "[%.*s] %.*s\n",
               static_cast<int>(LogLevelName(level).size()),
               LogLevelName(level).data(), static_cast<int>(message.size()),
               message.data());
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

LogLevel Logger::level_ = LogLevel::kWarning;
Logger::Sink Logger::sink_ = nullptr;

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void Logger::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  sink_ = std::move(sink);
}

void Logger::Emit(LogLevel level, std::string_view message) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  if (sink_) {
    sink_(level, message);
  } else {
    DefaultSink(level, message);
  }
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() { Logger::Emit(level_, stream_.str()); }

}  // namespace minoan
