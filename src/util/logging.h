// Copyright 2026 The MinoanER Authors.
// Minimal leveled logging with printf-free streaming syntax:
//
//   MINOAN_LOG(kInfo) << "built " << n << " blocks";
//
// The sink defaults to stderr; tests can capture messages by installing a
// custom sink. Logging below the active level compiles to a cheap branch.

#ifndef MINOAN_UTIL_LOGGING_H_
#define MINOAN_UTIL_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace minoan {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

std::string_view LogLevelName(LogLevel level);

/// Global logging configuration. Not thread-safe to mutate concurrently with
/// logging; set it once at startup (tests serialize via their own harness).
class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  static LogLevel level() { return level_; }
  static void set_level(LogLevel level) { level_ = level; }

  /// Replaces the sink; passing nullptr restores the default stderr sink.
  static void set_sink(Sink sink);

  /// Emits one finished record to the active sink.
  static void Emit(LogLevel level, std::string_view message);

 private:
  static LogLevel level_;
  static Sink sink_;
};

/// One in-flight log statement; flushes on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

#define MINOAN_LOG(severity)                                      \
  if (::minoan::LogLevel::severity < ::minoan::Logger::level()) { \
  } else                                                          \
    ::minoan::LogMessage(::minoan::LogLevel::severity, __FILE__, __LINE__)

}  // namespace minoan

#endif  // MINOAN_UTIL_LOGGING_H_
