#include "util/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace minoan {

uint64_t Rng::Below(uint64_t bound) {
  assert(bound > 0);
  // Lemire's method: multiply-shift with rejection of the biased low range.
  uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Below(span));
}

double Rng::NextGaussian() {
  // Marsaglia polar method; discards the spare to stay stateless.
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  return u * std::sqrt(-2.0 * std::log(s) / s);
}

uint32_t Rng::GeometricCount(double p, uint32_t cap) {
  uint32_t n = 0;
  while (n < cap && Chance(p)) ++n;
  return n;
}

ZipfSampler::ZipfSampler(uint32_t n, double s) {
  assert(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (uint32_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding drift
}

uint32_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint32_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(uint32_t k) const {
  assert(k < cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace minoan
