// Copyright 2026 The MinoanER Authors.
// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in MinoanER (data generation, sampling, shuffles)
// flows from a single seeded `Rng`, so that every experiment is exactly
// reproducible. The generator is xoshiro256**, seeded via splitmix64, which
// is both faster and of higher statistical quality than std::mt19937_64 while
// keeping the state at 32 bytes.

#ifndef MINOAN_UTIL_RNG_H_
#define MINOAN_UTIL_RNG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace minoan {

/// splitmix64 step; used for seeding and cheap hash mixing.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** deterministic PRNG. Satisfies the subset of
/// UniformRandomBitGenerator needed by <algorithm> shuffles.
class Rng {
 public:
  using result_type = uint64_t;

  /// Constructs a generator whose whole stream is determined by `seed`.
  explicit Rng(uint64_t seed = 0x6d696e6f616eULL) { Reseed(seed); }

  /// Resets the stream as if freshly constructed with `seed`.
  void Reseed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// Next raw 64 random bits.
  uint64_t operator()() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  uint64_t Below(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw: true with probability `p` (clamped to [0,1]).
  bool Chance(double p) { return NextDouble() < p; }

  /// Standard normal via Marsaglia polar method.
  double NextGaussian();

  /// Geometric-ish count: number of successes before failure at rate `p`,
  /// capped at `cap`. Used for sizing variable-length value lists.
  uint32_t GeometricCount(double p, uint32_t cap);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Picks one element uniformly; requires non-empty input.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    return items[Below(items.size())];
  }

  /// Spawns an independent child stream; children with distinct tags have
  /// uncorrelated streams even from the same parent state.
  Rng Fork(uint64_t tag) {
    uint64_t mix = state_[0] ^ (tag * 0x9e3779b97f4a7c15ULL);
    (*this)();  // advance parent so repeated forks differ
    return Rng(SplitMix64(mix));
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t state_[4];
};

/// Samples ranks from a Zipf (power-law) distribution over {0, .., n-1} with
/// exponent `s`, using precomputed cumulative weights (O(log n) per draw).
/// Rank 0 is the most popular. Used for the skewed KB link-popularity in the
/// synthetic LOD cloud (the poster: "popularity in links is heavily skewed").
class ZipfSampler {
 public:
  /// Builds the sampler for `n` ranks with skew exponent `s >= 0`
  /// (s = 0 degenerates to uniform).
  ZipfSampler(uint32_t n, double s);

  /// Draws a rank in [0, n).
  uint32_t Sample(Rng& rng) const;

  uint32_t size() const { return static_cast<uint32_t>(cdf_.size()); }

  /// Probability mass of rank `k`.
  double Pmf(uint32_t k) const;

 private:
  std::vector<double> cdf_;  // normalized cumulative weights
};

}  // namespace minoan

#endif  // MINOAN_UTIL_RNG_H_
