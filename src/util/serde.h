// Copyright 2026 The MinoanER Authors.
// Binary (de)serialization primitives for session checkpoints.
//
// Checkpoint/restore must reproduce a run byte-for-byte, so doubles are
// round-tripped through their IEEE-754 bit patterns and integers are written
// in a fixed (little-endian) byte order, independent of the host. Readers
// return false on a truncated stream instead of leaving values
// half-initialized — callers turn that into a Status.

#ifndef MINOAN_UTIL_SERDE_H_
#define MINOAN_UTIL_SERDE_H_

#include <bit>
#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>

namespace minoan {
namespace serde {

inline void WriteU8(std::ostream& out, uint8_t v) {
  out.put(static_cast<char>(v));
}

inline void WriteU16(std::ostream& out, uint16_t v) {
  char buf[2];
  buf[0] = static_cast<char>(v & 0xff);
  buf[1] = static_cast<char>((v >> 8) & 0xff);
  out.write(buf, 2);
}

inline void WriteU32(std::ostream& out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(buf, 4);
}

inline void WriteU64(std::ostream& out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(buf, 8);
}

inline void WriteDouble(std::ostream& out, double v) {
  WriteU64(out, std::bit_cast<uint64_t>(v));
}

inline void WriteString(std::ostream& out, std::string_view s) {
  WriteU64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

inline bool ReadU8(std::istream& in, uint8_t& v) {
  char c;
  if (!in.get(c)) return false;
  v = static_cast<uint8_t>(c);
  return true;
}

inline bool ReadU16(std::istream& in, uint16_t& v) {
  char buf[2];
  if (!in.read(buf, 2)) return false;
  v = static_cast<uint16_t>(
      static_cast<unsigned char>(buf[0]) |
      (static_cast<uint16_t>(static_cast<unsigned char>(buf[1])) << 8));
  return true;
}

inline bool ReadU32(std::istream& in, uint32_t& v) {
  char buf[4];
  if (!in.read(buf, 4)) return false;
  v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(buf[i])) << (8 * i);
  }
  return true;
}

inline bool ReadU64(std::istream& in, uint64_t& v) {
  char buf[8];
  if (!in.read(buf, 8)) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(buf[i])) << (8 * i);
  }
  return true;
}

inline bool ReadDouble(std::istream& in, double& v) {
  uint64_t bits;
  if (!ReadU64(in, bits)) return false;
  v = std::bit_cast<double>(bits);
  return true;
}

/// Reads a length-prefixed string; rejects lengths above `max_len` (corrupt
/// or hostile input must not trigger a giant allocation).
inline bool ReadString(std::istream& in, std::string& s,
                       uint64_t max_len = 1 << 20) {
  uint64_t len;
  if (!ReadU64(in, len) || len > max_len) return false;
  s.resize(len);
  if (len == 0) return true;
  return static_cast<bool>(
      in.read(s.data(), static_cast<std::streamsize>(len)));
}

/// Reserve clamp for count fields read from an untrusted checkpoint: a
/// corrupt 64-bit count must not trigger a giant upfront allocation. Never
/// reject the count itself — clamp the reserve and let the element-read
/// loop fail fast at the real end of the stream, so legitimately large
/// states stay restorable. Shared by every restore path (batch resolver,
/// online engine, incremental index).
inline constexpr uint64_t kMaxUpfrontReserve = 1 << 20;

/// Clamped reserve size for an untrusted element count.
inline uint64_t ClampedReserve(uint64_t count) {
  return count < kMaxUpfrontReserve ? count : kMaxUpfrontReserve;
}

/// `pair` must decode to two entity ids below `num_entities`; anything else
/// is a corrupt or hostile checkpoint and would index out of bounds once
/// stepped on. (Matches util/hash.h PairKey packing.)
inline bool ValidPairKey(uint64_t pair, uint32_t num_entities) {
  return static_cast<uint32_t>(pair >> 32) < num_entities &&
         static_cast<uint32_t>(pair & 0xffffffffULL) < num_entities;
}

}  // namespace serde
}  // namespace minoan

#endif  // MINOAN_UTIL_SERDE_H_
