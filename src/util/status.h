// Copyright 2026 The MinoanER Authors.
// Error-handling primitives used across the library.
//
// MinoanER does not use exceptions for control flow (hot loops are noexcept);
// fallible operations — parsing, I/O, configuration validation — return a
// `Status`, and value-producing fallible operations return a `Result<T>`.
// Both are modeled after absl::Status / absl::StatusOr.

#ifndef MINOAN_UTIL_STATUS_H_
#define MINOAN_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace minoan {

/// Canonical error space, a subset of the gRPC/absl canonical codes that is
/// sufficient for an analytics library.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kResourceExhausted = 6,
  kInternal = 7,
  kUnimplemented = 8,
  kIoError = 9,
  kParseError = 10,
};

/// Returns the canonical lowercase name of `code` (e.g. "invalid_argument").
std::string_view StatusCodeName(StatusCode code);

/// A cheap, copyable success-or-error value. An OK status carries no message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with `code` and a human-readable `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code_name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Holds either a value of type `T` or an error `Status`. Accessing the value
/// of an errored Result is a programming error (checked by assert in debug
/// builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. `status.ok()` is forbidden.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` when errored.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

/// Propagates a non-OK status out of the enclosing function.
#define MINOAN_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::minoan::Status _minoan_st = (expr);       \
    if (!_minoan_st.ok()) return _minoan_st;    \
  } while (false)

/// Evaluates a Result<T> expression; on success binds the value to `lhs`,
/// on error returns the status from the enclosing function.
#define MINOAN_ASSIGN_OR_RETURN(lhs, expr)                \
  MINOAN_ASSIGN_OR_RETURN_IMPL_(                          \
      MINOAN_STATUS_CONCAT_(_minoan_res, __LINE__), lhs, expr)
#define MINOAN_STATUS_CONCAT_INNER_(a, b) a##b
#define MINOAN_STATUS_CONCAT_(a, b) MINOAN_STATUS_CONCAT_INNER_(a, b)
#define MINOAN_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

}  // namespace minoan

#endif  // MINOAN_UTIL_STATUS_H_
