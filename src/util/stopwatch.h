// Copyright 2026 The MinoanER Authors.
// Wall-clock measurement helpers for benches and phase accounting.

#ifndef MINOAN_UTIL_STOPWATCH_H_
#define MINOAN_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace minoan {

/// Monotonic wall-clock stopwatch with microsecond resolution.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Microseconds elapsed since construction or the last Restart().
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  /// Milliseconds elapsed (fractional).
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedMicros()) / 1000.0;
  }

  /// Seconds elapsed (fractional).
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace minoan

#endif  // MINOAN_UTIL_STOPWATCH_H_
