#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace minoan {

Table& Table::Cell(double value, int digits) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(digits) << value;
  return Cell(oss.str());
}

void Table::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string();
      os << " " << v << std::string(widths[c] - v.size(), ' ') << " |";
    }
    os << "\n";
  };
  print_row(headers_);
  os << "|";
  for (size_t c = 0; c < widths.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

void Table::PrintCsv(std::ostream& os) const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char ch : cell) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ",";
      os << escape(cells[c]);
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

Status Table::SaveCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  PrintCsv(out);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

std::string FormatPercent(double fraction, int digits) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(digits) << fraction * 100.0 << "%";
  return oss.str();
}

std::string FormatCount(uint64_t count) {
  std::string digits = std::to_string(count);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int pending = static_cast<int>(digits.size());
  for (char d : digits) {
    out += d;
    --pending;
    if (pending > 0 && pending % 3 == 0) out += ',';
  }
  return out;
}

}  // namespace minoan
