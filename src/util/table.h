// Copyright 2026 The MinoanER Authors.
// Console/CSV table rendering for the experiment harnesses.
//
// Every bench binary prints paper-style tables through this class so the
// output is uniformly aligned, machine-greppable, and optionally mirrored to
// a CSV file.

#ifndef MINOAN_UTIL_TABLE_H_
#define MINOAN_UTIL_TABLE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace minoan {

/// A rectangular table of string cells with a header row.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Starts a new row; subsequent Cell() calls fill it left to right.
  Table& AddRow() {
    rows_.emplace_back();
    return *this;
  }

  Table& Cell(std::string value) {
    rows_.back().push_back(std::move(value));
    return *this;
  }
  Table& Cell(const char* value) { return Cell(std::string(value)); }
  Table& Cell(std::string_view value) { return Cell(std::string(value)); }
  Table& Cell(int64_t value) { return Cell(std::to_string(value)); }
  Table& Cell(uint64_t value) { return Cell(std::to_string(value)); }
  Table& Cell(int value) { return Cell(static_cast<int64_t>(value)); }
  Table& Cell(unsigned value) { return Cell(static_cast<uint64_t>(value)); }

  /// Formats a double with `digits` decimals.
  Table& Cell(double value, int digits = 4);

  /// Writes an ASCII-art aligned rendering (pipe-separated, padded).
  void Print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (cells containing separators are quoted).
  void PrintCsv(std::ostream& os) const;

  /// Saves the CSV rendering to `path`.
  Status SaveCsv(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return headers_.size(); }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::string>& row(size_t i) const { return rows_[i]; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Convenience: "12.3%"-style percent formatting.
std::string FormatPercent(double fraction, int digits = 1);

/// Convenience: "1,234,567" thousands separators for counts.
std::string FormatCount(uint64_t count);

}  // namespace minoan

#endif  // MINOAN_UTIL_TABLE_H_
