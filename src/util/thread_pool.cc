#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "obs/metrics.h"

namespace minoan {

namespace {

/// Scratch slot of the current thread: 0 for non-workers, i + 1 for worker
/// i of whichever pool owns the thread (see ThreadPool::CurrentWorkerSlot).
thread_local size_t tls_worker_slot = 0;

/// Pins `thread` to one core. Best-effort: only implemented on Linux, and
/// affinity failures (cpuset restrictions, exotic topologies) are ignored —
/// pinning is a cache-placement hint, never a correctness requirement.
void PinToCore(std::thread& thread, size_t core) {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core, &set);
  (void)pthread_setaffinity_np(thread.native_handle(), sizeof(set), &set);
#else
  (void)thread;
  (void)core;
#endif
}

// Timing is metered only while the registry is enabled, so the pool costs
// zero clock reads when observability is switched off. Timestamps are
// steady-clock micros; 0 doubles as the "timing was off" sentinel.
bool MeteringEnabled() {
  return obs::MetricsRegistry::Default().enabled();
}

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads, ThreadPoolOptions options)
    : options_(options) {
  num_threads = std::max<size_t>(1, num_threads);
  worker_busy_ = std::make_unique<BusyCell[]>(num_threads);
  workers_.reserve(num_threads);
  const size_t num_cores =
      std::max(1u, std::thread::hardware_concurrency());
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
    if (options_.pin_threads) PinToCore(workers_.back(), i % num_cores);
  }
}

size_t ThreadPool::CurrentWorkerSlot() { return tls_worker_slot; }

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
  // A pending exception nobody collected dies with the pool; destructors
  // must not throw.
}

void ThreadPool::Submit(std::function<void()> task) {
  const uint64_t enqueued_us = MeteringEnabled() ? NowMicros() : 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(QueuedTask{std::move(task), enqueued_us});
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::exception_ptr pending;
  {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
    pending = std::exchange(first_exception_, nullptr);
  }
  if (pending) std::rethrow_exception(pending);
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  tls_worker_slot = worker_index + 1;
  // Guarantees the in_flight_ decrement on every path out of a task,
  // including exceptional ones — otherwise Wait() deadlocks forever.
  struct TaskGuard {
    ThreadPool* pool;
    ~TaskGuard() {
      std::unique_lock<std::mutex> lock(pool->mu_);
      if (--pool->in_flight_ == 0) pool->idle_cv_.notify_all();
    }
  };
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t start_us =
        task.enqueued_us != 0 && MeteringEnabled() ? NowMicros() : 0;
    if (start_us != 0) {
      queue_wait_micros_.fetch_add(start_us - std::min(start_us,
                                                       task.enqueued_us),
                                   std::memory_order_relaxed);
    }
    {
      TaskGuard guard{this};
      try {
        task.fn();
      } catch (...) {
        std::unique_lock<std::mutex> lock(mu_);
        if (!first_exception_) first_exception_ = std::current_exception();
      }
    }
    if (start_us != 0) {
      worker_busy_[worker_index].micros.fetch_add(NowMicros() - start_us,
                                                  std::memory_order_relaxed);
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t chunks = std::min(n, num_threads() * 4);
  const size_t chunk_size = (n + chunks - 1) / chunks;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = c * chunk_size;
    const size_t end = std::min(n, begin + chunk_size);
    if (begin >= end) break;
    Submit([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  Wait();
}

ThreadPoolStats ThreadPool::Stats() const {
  ThreadPoolStats stats;
  stats.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  stats.queue_wait_micros =
      queue_wait_micros_.load(std::memory_order_relaxed);
  stats.worker_busy_micros.reserve(workers_.size());
  for (size_t i = 0; i < workers_.size(); ++i) {
    stats.worker_busy_micros.push_back(
        worker_busy_[i].micros.load(std::memory_order_relaxed));
  }
  return stats;
}

}  // namespace minoan
