#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace minoan {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
  // A pending exception nobody collected dies with the pool; destructors
  // must not throw.
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::exception_ptr pending;
  {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
    pending = std::exchange(first_exception_, nullptr);
  }
  if (pending) std::rethrow_exception(pending);
}

void ThreadPool::WorkerLoop() {
  // Guarantees the in_flight_ decrement on every path out of a task,
  // including exceptional ones — otherwise Wait() deadlocks forever.
  struct TaskGuard {
    ThreadPool* pool;
    ~TaskGuard() {
      std::unique_lock<std::mutex> lock(pool->mu_);
      if (--pool->in_flight_ == 0) pool->idle_cv_.notify_all();
    }
  };
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    {
      TaskGuard guard{this};
      try {
        task();
      } catch (...) {
        std::unique_lock<std::mutex> lock(mu_);
        if (!first_exception_) first_exception_ = std::current_exception();
      }
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t chunks = std::min(n, num_threads() * 4);
  const size_t chunk_size = (n + chunks - 1) / chunks;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = c * chunk_size;
    const size_t end = std::min(n, begin + chunk_size);
    if (begin >= end) break;
    Submit([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  Wait();
}

}  // namespace minoan
