// Copyright 2026 The MinoanER Authors.
// Fixed-size worker pool used by the MapReduce engine and parallel benches.

#ifndef MINOAN_UTIL_THREAD_POOL_H_
#define MINOAN_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace minoan {

/// A minimal fixed-size thread pool. Tasks are void() callables. An
/// exception escaping a task is captured (first one wins; later ones are
/// dropped) and rethrown from the next Wait()/ParallelFor on the submitting
/// thread; the worker itself survives and keeps serving tasks.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first exception any of them raised (if one did).
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Runs `fn(i)` for i in [0, n) across the pool and waits for completion.
  /// Work is dealt in contiguous chunks to limit scheduling overhead.
  /// Rethrows the first exception thrown by any iteration (remaining chunks
  /// still run to completion before the rethrow).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers
  std::condition_variable idle_cv_;   // signals Wait()
  size_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr first_exception_;  // set by workers, drained by Wait()
};

}  // namespace minoan

#endif  // MINOAN_UTIL_THREAD_POOL_H_
