// Copyright 2026 The MinoanER Authors.
// Fixed-size worker pool used by the MapReduce engine and parallel benches.

#ifndef MINOAN_UTIL_THREAD_POOL_H_
#define MINOAN_UTIL_THREAD_POOL_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <iterator>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace minoan {

/// Utilization snapshot of a pool (see ThreadPool::Stats). All values are
/// cumulative since construction; timing fields are only accumulated while
/// the metrics registry is enabled.
struct ThreadPoolStats {
  uint64_t tasks_executed = 0;
  /// Total time tasks sat queued before a worker picked them up.
  uint64_t queue_wait_micros = 0;
  /// Time each worker spent running task bodies, indexed by worker.
  std::vector<uint64_t> worker_busy_micros;

  uint64_t TotalBusyMicros() const {
    uint64_t total = 0;
    for (uint64_t micros : worker_busy_micros) total += micros;
    return total;
  }
};

/// Construction-time pool behavior knobs.
struct ThreadPoolOptions {
  /// Pin worker i to CPU core (i mod hardware_concurrency). Linux only
  /// (pthread_setaffinity_np); a graceful no-op elsewhere and on affinity
  /// failures. Pinning keeps a worker's per-thread scratch (WorkerScratch)
  /// and its chunk's working set warm in one core's private caches instead
  /// of migrating them across cores mid-phase. Purely a placement hint:
  /// results are identical with pinning on or off.
  bool pin_threads = false;
};

/// A minimal fixed-size thread pool. Tasks are void() callables. An
/// exception escaping a task is captured (first one wins; later ones are
/// dropped) and rethrown from the next Wait()/ParallelFor on the submitting
/// thread; the worker itself survives and keeps serving tasks.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads, ThreadPoolOptions options = {});

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first exception any of them raised (if one did).
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Whether this pool asked for core pinning (the request, not the
  /// per-thread syscall outcome — affinity failures are ignored).
  bool pin_threads() const { return options_.pin_threads; }

  /// Scratch slot of the calling thread: worker i of whichever pool owns
  /// the thread maps to slot i + 1, any non-worker thread (e.g. the
  /// submitting thread running chunks inline) to slot 0. The index a
  /// WorkerScratch sized for this pool is addressed by.
  static size_t CurrentWorkerSlot();

  /// Runs `fn(i)` for i in [0, n) across the pool and waits for completion.
  /// Work is dealt in contiguous chunks to limit scheduling overhead.
  /// Rethrows the first exception thrown by any iteration (remaining chunks
  /// still run to completion before the rethrow).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Utilization so far. Safe to call concurrently with running work; a
  /// snapshot taken while tasks run may miss in-flight increments.
  ThreadPoolStats Stats() const;

 private:
  struct QueuedTask {
    std::function<void()> fn;
    uint64_t enqueued_us = 0;  // 0 when timing was off at enqueue
  };
  struct alignas(64) BusyCell {
    std::atomic<uint64_t> micros{0};
  };

  void WorkerLoop(size_t worker_index);

  ThreadPoolOptions options_;
  std::vector<std::thread> workers_;
  std::deque<QueuedTask> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers
  std::condition_variable idle_cv_;   // signals Wait()
  size_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr first_exception_;  // set by workers, drained by Wait()

  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<uint64_t> queue_wait_micros_{0};
  std::unique_ptr<BusyCell[]> worker_busy_;  // one padded cell per worker
};

/// Reusable per-worker scratch arenas for chunk dispatch: one T per worker
/// of the pool it is sized for, plus slot 0 for the submitting thread (the
/// inline path when no pool is given). Local() hands each thread its own
/// arena, so per-chunk buffers are allocated once per phase instead of once
/// per chunk, and (with pin_threads) stay resident in one core's cache.
///
/// Contract: call Local() only from chunks dispatched on the pool this
/// scratch was constructed for (or inline when constructed with nullptr);
/// no synchronization is needed because each slot is owned by exactly one
/// thread for the duration of the phase.
template <typename T>
class WorkerScratch {
 public:
  explicit WorkerScratch(const ThreadPool* pool)
      : slots_(pool == nullptr ? 1 : pool->num_threads() + 1) {}

  /// The calling thread's private arena.
  T& Local() {
    const size_t slot = ThreadPool::CurrentWorkerSlot();
    return slots_[slot < slots_.size() ? slot : 0];
  }

  size_t num_slots() const { return slots_.size(); }

 private:
  std::vector<T> slots_;
};

/// Resolves the "0 = hardware concurrency" convention shared by every
/// num_threads knob (workflow, meta-blocking, progressive, online).
inline uint32_t ResolveThreadCount(uint32_t num_threads) {
  return num_threads == 0 ? std::max(1u, std::thread::hardware_concurrency())
                          : num_threads;
}

/// Runs fn(i) for i in [0, count) — on the pool when given, inline
/// otherwise. The shared dispatch of every sharded phase (blocking postings,
/// graph-view construction, pruning): each i is a fixed unit of work (an
/// entity chunk, a block chunk, a vote shard), so results never depend on
/// which thread ran it.
template <typename Fn>
void RunPoolTasks(ThreadPool* pool, size_t count, const Fn& fn) {
  if (pool != nullptr && count > 1) {
    pool->ParallelFor(count, fn);
    return;
  }
  for (size_t i = 0; i < count; ++i) fn(i);
}

/// Number of fixed-size chunks covering [0, total). One definition of the
/// boundary math shared by every chunked phase — sizing per-chunk result
/// buffers and dealing the work must agree exactly.
inline size_t NumChunks(size_t total, size_t chunk_size) {
  return (total + chunk_size - 1) / chunk_size;
}

/// Deals [0, total) into fixed-size chunks and runs fn(chunk, begin, end)
/// for each, via RunPoolTasks. Chunk boundaries depend only on
/// (total, chunk_size) — never on the worker count — which is what makes
/// chunk-ordered merges deterministic.
template <typename Fn>
void RunChunkedTasks(ThreadPool* pool, size_t total, size_t chunk_size,
                     const Fn& fn) {
  RunPoolTasks(pool, NumChunks(total, chunk_size), [&](size_t c) {
    const size_t begin = c * chunk_size;
    const size_t end = std::min(total, begin + chunk_size);
    fn(c, begin, end);
  });
}

/// Flattens per-task result vectors in task order, draining `parts` — the
/// merge step of every chunked phase: partial results are produced per
/// chunk (or shard) and must be concatenated in fixed task order to stay
/// deterministic.
template <typename T>
std::vector<T> FlattenInOrder(std::vector<std::vector<T>>& parts) {
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  std::vector<T> out;
  out.reserve(total);
  for (auto& p : parts) {
    out.insert(out.end(), std::make_move_iterator(p.begin()),
               std::make_move_iterator(p.end()));
    p.clear();
  }
  return out;
}

}  // namespace minoan

#endif  // MINOAN_UTIL_THREAD_POOL_H_
