// Copyright 2026 The MinoanER Authors.
// Fixed-capacity top-k selection, used by cardinality pruning (CEP/CNP) in
// meta-blocking: keep the k highest-weighted comparisons of a stream.

#ifndef MINOAN_UTIL_TOPK_H_
#define MINOAN_UTIL_TOPK_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <vector>

namespace minoan {

/// Maintains the k largest items (by `Compare`, default operator<) seen so
/// far using a min-heap of size <= k. Push is O(log k); extraction sorts
/// descending.
template <typename T, typename Compare = std::less<T>>
class TopK {
 public:
  explicit TopK(size_t k, Compare cmp = Compare())
      : k_(k), cmp_(std::move(cmp)) {
    // Cap the up-front reservation: k may be huge (e.g. CEP's BC/2) while
    // the stream is short, and sharded pruning keeps many TopK instances
    // alive at once.
    heap_.reserve(std::max<size_t>(1, std::min<size_t>(k, 1024)));
  }

  /// Offers one item; keeps it only if it is among the k largest so far.
  void Push(const T& item) {
    if (k_ == 0) return;
    if (heap_.size() < k_) {
      heap_.push_back(item);
      std::push_heap(heap_.begin(), heap_.end(), Greater());
      return;
    }
    if (cmp_(heap_.front(), item)) {  // item > current minimum
      std::pop_heap(heap_.begin(), heap_.end(), Greater());
      heap_.back() = item;
      std::push_heap(heap_.begin(), heap_.end(), Greater());
    }
  }

  size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }

  /// The smallest retained item (only valid when full()); the admission
  /// threshold for future pushes.
  const T& Min() const { return heap_.front(); }
  bool full() const { return heap_.size() == k_; }

  /// Returns the retained items sorted largest-first and leaves the heap
  /// empty. (sort_heap orders ascending by its comparator; ascending by
  /// Greater == descending by cmp_.)
  std::vector<T> TakeSortedDescending() {
    std::sort_heap(heap_.begin(), heap_.end(), Greater());
    std::vector<T> out = std::move(heap_);
    heap_.clear();
    return out;
  }

 private:
  // Min-heap ordering: parent smaller than children under cmp_.
  struct GreaterImpl {
    const Compare* cmp;
    bool operator()(const T& a, const T& b) const { return (*cmp)(b, a); }
  };
  GreaterImpl Greater() const { return GreaterImpl{&cmp_}; }

  size_t k_;
  Compare cmp_;
  std::vector<T> heap_;
};

}  // namespace minoan

#endif  // MINOAN_UTIL_TOPK_H_
