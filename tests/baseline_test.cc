// Unit tests for the baseline schedulers: random order, static weight order,
// and the Altowim-style window-based quantity-progressive resolver.

#include <algorithm>
#include <set>

#include "baseline/schedulers.h"
#include "blocking/blocking_method.h"
#include "datagen/lod_generator.h"
#include "eval/ground_truth.h"
#include "eval/progressive_metrics.h"
#include "gtest/gtest.h"
#include "metablocking/meta_blocking.h"
#include "util/hash.h"

namespace minoan {
namespace baseline {
namespace {

std::vector<WeightedComparison> FixtureCandidates() {
  return {
      {0, 5, 0.9}, {1, 6, 0.5}, {2, 7, 0.7}, {3, 8, 0.2}, {4, 9, 0.4},
  };
}

TEST(RandomOrderTest, PermutationOfInput) {
  const auto candidates = FixtureCandidates();
  const auto order = RandomOrder(candidates, 42);
  ASSERT_EQ(order.size(), candidates.size());
  std::set<uint64_t> in, out;
  for (const auto& c : candidates) in.insert(PairKey(c.a, c.b));
  for (const auto& c : order) out.insert(PairKey(c.a, c.b));
  EXPECT_EQ(in, out);
}

TEST(RandomOrderTest, DeterministicInSeed) {
  const auto candidates = FixtureCandidates();
  const auto a = RandomOrder(candidates, 7);
  const auto b = RandomOrder(candidates, 7);
  const auto c = RandomOrder(candidates, 8);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  EXPECT_FALSE(std::equal(a.begin(), a.end(), c.begin()) &&
               std::equal(c.begin(), c.end(), a.begin()));
}

TEST(OracleOrderTest, MatchesComeFirst) {
  const auto candidates = FixtureCandidates();
  // Declare pairs (1,6) and (3,8) as the true matches.
  auto is_match = [](EntityId a, EntityId b) {
    return (a == 1 && b == 6) || (a == 3 && b == 8);
  };
  const auto order = OracleOrder(candidates, is_match);
  ASSERT_EQ(order.size(), candidates.size());
  EXPECT_EQ(order[0], Comparison(1, 6));
  EXPECT_EQ(order[1], Comparison(3, 8));
  // Non-matches follow in candidate order.
  EXPECT_EQ(order[2], Comparison(0, 5));
}

TEST(OracleOrderTest, DominatesEveryOtherOrderOnAuc) {
  // With truth known, the oracle's progressive recall can't be beaten over
  // the same candidate set.
  GroundTruth truth(10, {{1, 6}, {3, 8}});
  const auto candidates = FixtureCandidates();
  auto auc_of = [&](const std::vector<Comparison>& order) {
    ResolutionRun run;
    for (const Comparison& c : order) {
      ++run.comparisons_executed;
      if (truth.Matches(c.a, c.b)) {
        run.matches.push_back({run.comparisons_executed, c.a, c.b, 1.0});
      }
    }
    return ProgressiveRecallAuc(run, truth, candidates.size());
  };
  const double oracle_auc = auc_of(OracleOrder(
      candidates,
      [&](EntityId a, EntityId b) { return truth.Matches(a, b); }));
  for (uint64_t seed : {1u, 2u, 3u}) {
    EXPECT_GE(oracle_auc, auc_of(RandomOrder(candidates, seed)));
  }
  EXPECT_GE(oracle_auc, auc_of(WeightDescendingOrder(candidates)));
}

TEST(WeightOrderTest, DescendingWeights) {
  const auto order = WeightDescendingOrder(FixtureCandidates());
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0], Comparison(0, 5));  // 0.9
  EXPECT_EQ(order[1], Comparison(2, 7));  // 0.7
  EXPECT_EQ(order[2], Comparison(1, 6));  // 0.5
  EXPECT_EQ(order[3], Comparison(4, 9));  // 0.4
  EXPECT_EQ(order[4], Comparison(3, 8));  // 0.2
}

// ---------------------------------------------------------------------------
// Altowim-style window resolver on a generated cloud
// ---------------------------------------------------------------------------

class AltowimTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::LodCloudConfig cfg;
    cfg.seed = 101;
    cfg.num_real_entities = 250;
    cfg.num_kbs = 4;
    cfg.center_kbs = 2;
    auto cloud = datagen::GenerateLodCloud(cfg);
    ASSERT_TRUE(cloud.ok());
    auto collection = cloud->BuildCollection();
    ASSERT_TRUE(collection.ok());
    collection_ = new EntityCollection(std::move(collection).value());
    auto truth = GroundTruth::FromCloud(*cloud, *collection_);
    ASSERT_TRUE(truth.ok());
    truth_ = new GroundTruth(std::move(truth).value());
    evaluator_ = new SimilarityEvaluator(*collection_);
    BlockCollection blocks = TokenBlocking().Build(*collection_);
    MetaBlockingOptions meta;
    candidates_ = new std::vector<WeightedComparison>(
        MetaBlocking(meta).Prune(blocks, *collection_));
  }
  static void TearDownTestSuite() {
    delete candidates_;
    delete evaluator_;
    delete truth_;
    delete collection_;
    candidates_ = nullptr;
    evaluator_ = nullptr;
    truth_ = nullptr;
    collection_ = nullptr;
  }

  static EntityCollection* collection_;
  static GroundTruth* truth_;
  static SimilarityEvaluator* evaluator_;
  static std::vector<WeightedComparison>* candidates_;
};

EntityCollection* AltowimTest::collection_ = nullptr;
GroundTruth* AltowimTest::truth_ = nullptr;
SimilarityEvaluator* AltowimTest::evaluator_ = nullptr;
std::vector<WeightedComparison>* AltowimTest::candidates_ = nullptr;

TEST_F(AltowimTest, BudgetRespected) {
  AltowimResolver::Options opts;
  opts.matcher.budget = 123;
  AltowimResolver resolver(*collection_, *evaluator_, opts);
  const ResolutionRun run = resolver.Run(*candidates_);
  EXPECT_EQ(run.comparisons_executed, 123u);
}

TEST_F(AltowimTest, UnlimitedExecutesAll) {
  AltowimResolver::Options opts;
  opts.matcher.budget = 0;
  AltowimResolver resolver(*collection_, *evaluator_, opts);
  const ResolutionRun run = resolver.Run(*candidates_);
  EXPECT_EQ(run.comparisons_executed, candidates_->size());
}

TEST_F(AltowimTest, NoComparisonRepeated) {
  AltowimResolver::Options opts;
  AltowimResolver resolver(*collection_, *evaluator_, opts);
  const ResolutionRun run = resolver.Run(*candidates_);
  std::set<uint64_t> seen;
  for (const MatchEvent& m : run.matches) {
    EXPECT_TRUE(seen.insert(PairKey(m.a, m.b)).second);
  }
}

TEST_F(AltowimTest, BeatsRandomOnEarlyRecall) {
  AltowimResolver::Options opts;
  AltowimResolver resolver(*collection_, *evaluator_, opts);
  const ResolutionRun alt = resolver.Run(*candidates_);

  MatcherOptions mopts;
  BatchMatcher random_matcher(*evaluator_, mopts);
  const ResolutionRun rnd =
      random_matcher.Run(RandomOrder(*candidates_, 4242));

  const uint64_t horizon = candidates_->size();
  EXPECT_GT(ProgressiveRecallAuc(alt, *truth_, horizon),
            ProgressiveRecallAuc(rnd, *truth_, horizon));
}

TEST_F(AltowimTest, WindowSizeOneStillWorks) {
  AltowimResolver::Options opts;
  opts.window_size = 1;
  opts.matcher.budget = 50;
  AltowimResolver resolver(*collection_, *evaluator_, opts);
  const ResolutionRun run = resolver.Run(*candidates_);
  EXPECT_EQ(run.comparisons_executed, 50u);
}

TEST_F(AltowimTest, DeterministicAcrossRuns) {
  AltowimResolver::Options opts;
  opts.matcher.budget = 200;
  AltowimResolver resolver(*collection_, *evaluator_, opts);
  const ResolutionRun a = resolver.Run(*candidates_);
  const ResolutionRun b = resolver.Run(*candidates_);
  ASSERT_EQ(a.matches.size(), b.matches.size());
  for (size_t i = 0; i < a.matches.size(); ++i) {
    EXPECT_EQ(PairKey(a.matches[i].a, a.matches[i].b),
              PairKey(b.matches[i].a, b.matches[i].b));
  }
}

}  // namespace
}  // namespace baseline
}  // namespace minoan
