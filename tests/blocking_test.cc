// Unit tests for the blocking module: blocks, token/PIS/attribute-clustering
// blocking, purging, filtering, and comparison counting.

#include <algorithm>
#include <set>

#include "blocking/block.h"
#include "blocking/block_cleaning.h"
#include "blocking/blocking_method.h"
#include "datagen/lod_generator.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "gtest/gtest.h"
#include "rdf/ntriples.h"

namespace minoan {
namespace {

std::vector<rdf::Triple> Parse(const std::string& doc) {
  rdf::NTriplesParser parser;
  auto result = parser.ParseString(doc);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

/// Two tiny KBs with a known matching pair (heraklion) sharing tokens.
EntityCollection TinyCollection() {
  EntityCollection c;
  EXPECT_TRUE(c.AddKnowledgeBase("a", Parse(R"(
<http://a/r/heraklion> <http://a/v/name> "heraklion port" .
<http://a/r/athens> <http://a/v/name> "athens capital" .
<http://a/r/sparta> <http://a/v/name> "sparta war" .
)")).ok());
  EXPECT_TRUE(c.AddKnowledgeBase("b", Parse(R"(
<http://b/x/h1> <http://b/p/label> "heraklion crete port" .
<http://b/x/a1> <http://b/p/label> "athens greece" .
)")).ok());
  EXPECT_TRUE(c.Finalize().ok());
  return c;
}

EntityId Find(const EntityCollection& c, std::string_view iri) {
  const EntityId e = c.FindByIri(iri);
  EXPECT_NE(e, kInvalidEntity) << iri;
  return e;
}

// ---------------------------------------------------------------------------
// Block / BlockCollection mechanics
// ---------------------------------------------------------------------------

TEST(BlockTest, DirtyComparisonsIsChoose2) {
  EntityCollection c = TinyCollection();
  Block b;
  b.entities = {0, 1, 2, 3};
  EXPECT_EQ(b.NumComparisons(c, ResolutionMode::kDirty), 6u);
}

TEST(BlockTest, CleanCleanComparisonsCrossKbOnly) {
  EntityCollection c = TinyCollection();
  // Entities 0..2 are in KB a, 3..4 in KB b.
  Block b;
  b.entities = {0, 1, 3};
  // pairs: (0,3), (1,3) cross; (0,1) same-KB.
  EXPECT_EQ(b.NumComparisons(c, ResolutionMode::kCleanClean), 2u);
  Block same_kb;
  same_kb.entities = {0, 1, 2};
  EXPECT_EQ(same_kb.NumComparisons(c, ResolutionMode::kCleanClean), 0u);
}

TEST(BlockCollectionTest, AddBlockDropsSingletonsAndDupes) {
  BlockCollection blocks;
  blocks.AddBlock("solo", {4});
  blocks.AddBlock("dupes", {2, 2, 1});
  ASSERT_EQ(blocks.num_blocks(), 1u);
  EXPECT_EQ(blocks.block(0).entities, (std::vector<EntityId>{1, 2}));
  EXPECT_EQ(blocks.KeyString(blocks.block(0).key), "dupes");
}

TEST(BlockCollectionTest, DistinctComparisonsDedupesAcrossBlocks) {
  EntityCollection c = TinyCollection();
  BlockCollection blocks;
  blocks.AddBlock("k1", {0, 3});
  blocks.AddBlock("k2", {0, 3, 4});
  const auto distinct =
      blocks.DistinctComparisons(c, ResolutionMode::kCleanClean);
  // (0,3) appears twice across blocks but once distinct; plus (0,4), (3,4)
  // is same-KB (both b)... 3 and 4 are both KB b -> excluded.
  std::set<std::pair<EntityId, EntityId>> expect{{0, 3}, {0, 4}};
  std::set<std::pair<EntityId, EntityId>> got;
  for (const Comparison& cmp : distinct) got.insert({cmp.a, cmp.b});
  EXPECT_EQ(got, expect);
}

TEST(BlockCollectionTest, EntityIndexInvertsBlocks) {
  EntityCollection c = TinyCollection();
  BlockCollection blocks;
  blocks.AddBlock("k1", {0, 1});
  blocks.AddBlock("k2", {1, 2});
  blocks.BuildEntityIndex(c.num_entities());
  EXPECT_EQ(blocks.BlocksOf(1).size(), 2u);
  EXPECT_EQ(blocks.BlocksOf(0).size(), 1u);
  EXPECT_EQ(blocks.BlocksOf(4).size(), 0u);
}

TEST(BlockCollectionTest, NumPlacedEntities) {
  BlockCollection blocks;
  blocks.AddBlock("k1", {0, 1});
  blocks.AddBlock("k2", {1, 2});
  EXPECT_EQ(blocks.NumPlacedEntities(), 3u);
}

// ---------------------------------------------------------------------------
// Token blocking
// ---------------------------------------------------------------------------

TEST(TokenBlockingTest, SharedTokenCreatesBlock) {
  EntityCollection c = TinyCollection();
  TokenBlocking blocking;
  BlockCollection blocks = blocking.Build(c);
  // "heraklion" is shared by a/r/heraklion and b/x/h1.
  const EntityId ha = Find(c, "http://a/r/heraklion");
  const EntityId hb = Find(c, "http://b/x/h1");
  bool together = false;
  for (const Block& b : blocks.blocks()) {
    const bool has_a = std::binary_search(b.entities.begin(),
                                          b.entities.end(), ha);
    const bool has_b = std::binary_search(b.entities.begin(),
                                          b.entities.end(), hb);
    if (has_a && has_b) together = true;
  }
  EXPECT_TRUE(together);
}

TEST(TokenBlockingTest, MinDfFiltersUniqueTokens) {
  EntityCollection c = TinyCollection();
  TokenBlocking blocking;  // min_df = 2
  BlockCollection blocks = blocking.Build(c);
  for (const Block& b : blocks.blocks()) {
    EXPECT_GE(b.size(), 2u);
  }
}

TEST(TokenBlockingTest, MaxDfDropsStopTokens) {
  // Token "common" present in every entity: with max_df_fraction = 0.5 its
  // block must disappear.
  EntityCollection c;
  ASSERT_TRUE(c.AddKnowledgeBase("a", Parse(R"(
<http://a/1> <http://a/p> "common alpha" .
<http://a/2> <http://a/p> "common beta" .
)")).ok());
  ASSERT_TRUE(c.AddKnowledgeBase("b", Parse(R"(
<http://b/3> <http://b/p> "common gamma" .
<http://b/4> <http://b/p> "common delta" .
)")).ok());
  ASSERT_TRUE(c.Finalize().ok());
  TokenBlocking::Options opts;
  opts.max_df_fraction = 0.5;
  TokenBlocking blocking(opts);
  BlockCollection blocks = blocking.Build(c);
  for (const Block& b : blocks.blocks()) {
    EXPECT_NE(blocks.KeyString(b.key), "common");
  }
}

TEST(TokenBlockingTest, RecallOnGeneratedCenterCloud) {
  datagen::LodCloudConfig cfg;
  cfg.seed = 31;
  cfg.num_real_entities = 400;
  cfg.num_kbs = 3;
  cfg.center_kbs = 3;  // center-only: highly similar descriptions
  auto cloud = datagen::GenerateLodCloud(cfg);
  ASSERT_TRUE(cloud.ok());
  auto c = cloud->BuildCollection();
  ASSERT_TRUE(c.ok());
  auto truth = GroundTruth::FromCloud(*cloud, *c);
  ASSERT_TRUE(truth.ok());
  TokenBlocking blocking;
  BlockCollection blocks = blocking.Build(*c);
  const BlockingMetrics m =
      EvaluateBlocks(blocks, *c, ResolutionMode::kCleanClean, *truth);
  EXPECT_GT(m.pair_completeness, 0.95)
      << "token blocking must be near-complete on highly similar data";
  EXPECT_GT(m.reduction_ratio, 0.0);
}

TEST(TokenBlockingTest, RecallDropsOnPeripheryCloud) {
  datagen::LodCloudConfig cfg;
  cfg.seed = 31;
  cfg.num_real_entities = 400;
  cfg.num_kbs = 3;
  cfg.center_kbs = 0;  // periphery-only: somehow similar descriptions
  cfg.periphery_token_overlap = 0.15;
  auto cloud = datagen::GenerateLodCloud(cfg);
  ASSERT_TRUE(cloud.ok());
  auto c = cloud->BuildCollection();
  ASSERT_TRUE(c.ok());
  auto truth = GroundTruth::FromCloud(*cloud, *c);
  ASSERT_TRUE(truth.ok());
  TokenBlocking blocking;
  const BlockingMetrics m = EvaluateBlocks(
      blocking.Build(*c), *c, ResolutionMode::kCleanClean, *truth);
  EXPECT_LT(m.pair_completeness, 0.95)
      << "few common tokens: token blocking must miss pairs (poster claim)";
}

// ---------------------------------------------------------------------------
// PIS blocking
// ---------------------------------------------------------------------------

TEST(PisBlockingTest, SharedSuffixCreatesBlock) {
  EntityCollection c;
  ASSERT_TRUE(c.AddKnowledgeBase("a", Parse(R"(
<http://a/r/Heraklion> <http://a/p/x> "portcity" .
<http://a/r/Athens> <http://a/p/x> "capitalcity" .
)")).ok());
  ASSERT_TRUE(c.AddKnowledgeBase("b", Parse(R"(
<http://b/place/Heraklion> <http://b/p/y> "island town" .
)")).ok());
  ASSERT_TRUE(c.Finalize().ok());
  PisBlocking blocking;
  BlockCollection blocks = blocking.Build(c);
  bool suffix_block = false;
  for (const Block& b : blocks.blocks()) {
    if (blocks.KeyString(b.key) == "sfx:Heraklion") {
      suffix_block = true;
      EXPECT_EQ(b.size(), 2u);
    }
  }
  EXPECT_TRUE(suffix_block);
}

TEST(PisBlockingTest, InfixOptional) {
  EntityCollection c;
  ASSERT_TRUE(c.AddKnowledgeBase("a", Parse(R"(
<http://a/res/x1> <http://a/p> "v1" .
<http://a/res/x2> <http://a/p> "v2" .
)")).ok());
  ASSERT_TRUE(c.Finalize().ok());
  PisBlocking::Options opts;
  opts.use_infix = true;
  opts.tokenize_suffix = false;
  PisBlocking blocking(opts);
  BlockCollection blocks = blocking.Build(c);
  bool infix_block = false;
  for (const Block& b : blocks.blocks()) {
    if (blocks.KeyString(b.key) == "ifx:/res") infix_block = true;
  }
  EXPECT_TRUE(infix_block);
}

TEST(PisBlockingTest, CatchesMatchesWithDisjointValues) {
  // Same IRI suffix, zero shared value tokens: PIS finds it, token misses.
  EntityCollection c;
  ASSERT_TRUE(c.AddKnowledgeBase("a", Parse(R"(
<http://a/r/knossos_palace> <http://a/p> "alpha beta" .
)")).ok());
  ASSERT_TRUE(c.AddKnowledgeBase("b", Parse(R"(
<http://b/r/knossos_palace> <http://b/p> "gamma delta" .
)")).ok());
  ASSERT_TRUE(c.Finalize().ok());
  PisBlocking blocking;
  BlockCollection blocks = blocking.Build(c);
  EXPECT_GT(blocks.num_blocks(), 0u);
  bool together = false;
  for (const Block& b : blocks.blocks()) {
    if (b.size() == 2) together = true;
  }
  EXPECT_TRUE(together);
}

// ---------------------------------------------------------------------------
// Attribute-clustering blocking
// ---------------------------------------------------------------------------

TEST(AttrClusteringTest, SimilarVocabulariesCluster) {
  EntityCollection c;
  ASSERT_TRUE(c.AddKnowledgeBase("a", Parse(R"(
<http://a/1> <http://a/v/name> "minoan palace knossos" .
<http://a/2> <http://a/v/name> "venetian harbor chania" .
)")).ok());
  ASSERT_TRUE(c.AddKnowledgeBase("b", Parse(R"(
<http://b/1> <http://b/v/title> "minoan palace knossos" .
<http://b/2> <http://b/v/title> "venetian harbor chania" .
)")).ok());
  ASSERT_TRUE(c.Finalize().ok());
  AttributeClusteringBlocking blocking;
  const std::vector<uint32_t> clusters = blocking.ClusterPredicates(c);
  const uint32_t name_id = c.predicates().Find("http://a/v/name");
  const uint32_t title_id = c.predicates().Find("http://b/v/title");
  ASSERT_NE(name_id, kInternNotFound);
  ASSERT_NE(title_id, kInternNotFound);
  EXPECT_EQ(clusters[name_id], clusters[title_id]);
  EXPECT_NE(clusters[name_id], 0u) << "linked predicates leave glue cluster";
}

TEST(AttrClusteringTest, DisjointVocabulariesStaySeparate) {
  EntityCollection c;
  ASSERT_TRUE(c.AddKnowledgeBase("a", Parse(R"(
<http://a/1> <http://a/v/name> "alpha beta gamma" .
<http://a/2> <http://a/v/color> "red green blue" .
)")).ok());
  ASSERT_TRUE(c.Finalize().ok());
  AttributeClusteringBlocking blocking;
  const std::vector<uint32_t> clusters = blocking.ClusterPredicates(c);
  const uint32_t name_id = c.predicates().Find("http://a/v/name");
  const uint32_t color_id = c.predicates().Find("http://a/v/color");
  // Both unlinked -> glue cluster 0 for both.
  EXPECT_EQ(clusters[name_id], 0u);
  EXPECT_EQ(clusters[color_id], 0u);
}

TEST(AttrClusteringTest, BlocksKeyedByClusterAndToken) {
  EntityCollection c;
  ASSERT_TRUE(c.AddKnowledgeBase("a", Parse(R"(
<http://a/1> <http://a/v/name> "shared token" .
<http://a/2> <http://a/v/name> "shared token" .
)")).ok());
  ASSERT_TRUE(c.Finalize().ok());
  AttributeClusteringBlocking blocking;
  BlockCollection blocks = blocking.Build(c);
  ASSERT_GT(blocks.num_blocks(), 0u);
  for (const Block& b : blocks.blocks()) {
    EXPECT_EQ(blocks.KeyString(b.key).substr(0, 1), "c");
  }
}

// ---------------------------------------------------------------------------
// Composite blocking
// ---------------------------------------------------------------------------

TEST(CompositeBlockingTest, UnionOfMethods) {
  // IRIs share suffixes across KBs so PIS produces non-singleton blocks.
  EntityCollection c;
  ASSERT_TRUE(c.AddKnowledgeBase("a", Parse(R"(
<http://a/r/heraklion> <http://a/v/name> "heraklion port" .
<http://a/r/athens> <http://a/v/name> "athens capital" .
)")).ok());
  ASSERT_TRUE(c.AddKnowledgeBase("b", Parse(R"(
<http://b/x/heraklion> <http://b/p/label> "heraklion crete" .
<http://b/x/athens> <http://b/p/label> "athens greece" .
)")).ok());
  ASSERT_TRUE(c.Finalize().ok());
  std::vector<std::unique_ptr<BlockingMethod>> methods;
  methods.push_back(std::make_unique<TokenBlocking>());
  methods.push_back(std::make_unique<PisBlocking>());
  CompositeBlocking composite(std::move(methods));
  BlockCollection combined = composite.Build(c);
  BlockCollection token_only = TokenBlocking().Build(c);
  EXPECT_GE(combined.num_blocks(), token_only.num_blocks());
  // Keys carry the method prefix.
  bool token_prefixed = false, pis_prefixed = false;
  for (const Block& b : combined.blocks()) {
    const auto key = combined.KeyString(b.key);
    if (key.substr(0, 6) == "token:") token_prefixed = true;
    if (key.substr(0, 4) == "pis:") pis_prefixed = true;
  }
  EXPECT_TRUE(token_prefixed);
  EXPECT_TRUE(pis_prefixed);
}

// ---------------------------------------------------------------------------
// Cleaning: purging & filtering
// ---------------------------------------------------------------------------

BlockCollection OversizedBlocks() {
  BlockCollection blocks;
  blocks.AddBlock("small1", {0, 3});
  blocks.AddBlock("small2", {1, 3});
  blocks.AddBlock("huge", {0, 1, 2, 3, 4});
  return blocks;
}

TEST(PurgingTest, PurgeBySizeDropsLargeBlocks) {
  EntityCollection c = TinyCollection();
  BlockCollection blocks = OversizedBlocks();
  const CleaningStats stats =
      PurgeBySize(blocks, 3, c, ResolutionMode::kDirty);
  EXPECT_EQ(stats.blocks_before, 3u);
  EXPECT_EQ(stats.blocks_after, 2u);
  EXPECT_LT(stats.comparisons_after, stats.comparisons_before);
  for (const Block& b : blocks.blocks()) {
    EXPECT_LE(b.size(), 3u);
  }
}

TEST(PurgingTest, AutoPurgeNeverIncreasesComparisons) {
  datagen::LodCloudConfig cfg;
  cfg.seed = 37;
  cfg.num_real_entities = 300;
  cfg.num_kbs = 4;
  auto cloud = datagen::GenerateLodCloud(cfg);
  ASSERT_TRUE(cloud.ok());
  auto c = cloud->BuildCollection();
  ASSERT_TRUE(c.ok());
  BlockCollection blocks = TokenBlocking().Build(*c);
  const CleaningStats stats =
      AutoPurge(blocks, *c, ResolutionMode::kCleanClean);
  EXPECT_LE(stats.comparisons_after, stats.comparisons_before);
  EXPECT_LE(stats.blocks_after, stats.blocks_before);
  EXPECT_GT(stats.blocks_after, 0u);
}

TEST(FilteringTest, RatioOneKeepsEverything) {
  EntityCollection c = TinyCollection();
  BlockCollection blocks = OversizedBlocks();
  const CleaningStats stats =
      FilterBlocks(blocks, 1.0, c, ResolutionMode::kDirty);
  EXPECT_EQ(stats.blocks_after, stats.blocks_before);
  EXPECT_EQ(stats.comparisons_after, stats.comparisons_before);
}

TEST(FilteringTest, KeepsSmallestBlocksPerEntity) {
  EntityCollection c = TinyCollection();
  BlockCollection blocks = OversizedBlocks();
  // Entity 3 sits in all three blocks; ratio 0.5 keeps ceil(1.5) = 2 of its
  // smallest, so the "huge" block must lose it.
  FilterBlocks(blocks, 0.5, c, ResolutionMode::kDirty);
  for (const Block& b : blocks.blocks()) {
    if (blocks.KeyString(b.key) == "huge") {
      EXPECT_FALSE(std::binary_search(b.entities.begin(), b.entities.end(),
                                      EntityId{3}))
          << "entity 3's largest block must lose it";
    }
  }
}

TEST(FilteringTest, ReducesComparisonsOnRealisticBlocks) {
  datagen::LodCloudConfig cfg;
  cfg.seed = 41;
  cfg.num_real_entities = 300;
  cfg.num_kbs = 4;
  auto cloud = datagen::GenerateLodCloud(cfg);
  ASSERT_TRUE(cloud.ok());
  auto c = cloud->BuildCollection();
  ASSERT_TRUE(c.ok());
  BlockCollection blocks = TokenBlocking().Build(*c);
  const CleaningStats stats =
      FilterBlocks(blocks, 0.5, c.value(), ResolutionMode::kCleanClean);
  EXPECT_LT(stats.comparisons_after, stats.comparisons_before);
}

}  // namespace
}  // namespace minoan
