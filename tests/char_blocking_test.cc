// Tests for character-level blocking (q-gram, sorted neighborhood), the
// generator's typo knob, and the wall-clock budget.

#include <algorithm>
#include <memory>

#include "blocking/char_blocking.h"
#include "blocking/blocking_method.h"
#include "datagen/lod_generator.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "gtest/gtest.h"
#include "metablocking/meta_blocking.h"
#include "progressive/resolver.h"
#include "rdf/ntriples.h"

namespace minoan {
namespace {

std::vector<rdf::Triple> Parse(const std::string& doc) {
  rdf::NTriplesParser parser;
  auto result = parser.ParseString(doc);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

// ---------------------------------------------------------------------------
// QGramBlocking
// ---------------------------------------------------------------------------

TEST(QGramBlockingTest, TypoedTokensStillShareBlocks) {
  EntityCollection c;
  ASSERT_TRUE(c.AddKnowledgeBase("a", Parse(R"(
<http://a/1> <http://a/p> "heraklion" .
<http://a/2> <http://a/p> "unrelated" .
)")).ok());
  ASSERT_TRUE(c.AddKnowledgeBase("b", Parse(R"(
<http://b/1> <http://b/p> "heraklio" .
)")).ok());
  ASSERT_TRUE(c.Finalize().ok());
  // Exact-token blocking misses the typo pair entirely.
  BlockCollection token_blocks = TokenBlocking().Build(c);
  const EntityId a1 = c.FindByIri("http://a/1");
  const EntityId b1 = c.FindByIri("http://b/1");
  bool token_together = false;
  for (const Block& b : token_blocks.blocks()) {
    if (std::binary_search(b.entities.begin(), b.entities.end(), a1) &&
        std::binary_search(b.entities.begin(), b.entities.end(), b1)) {
      token_together = true;
    }
  }
  EXPECT_FALSE(token_together);
  // Q-gram blocking catches it through shared trigrams.
  QGramBlocking::Options opts;
  opts.max_df_fraction = 1.0;
  BlockCollection gram_blocks = QGramBlocking(opts).Build(c);
  bool gram_together = false;
  for (const Block& b : gram_blocks.blocks()) {
    if (std::binary_search(b.entities.begin(), b.entities.end(), a1) &&
        std::binary_search(b.entities.begin(), b.entities.end(), b1)) {
      gram_together = true;
    }
  }
  EXPECT_TRUE(gram_together);
}

TEST(QGramBlockingTest, ShortTokensUsedWhole) {
  EntityCollection c;
  ASSERT_TRUE(c.AddKnowledgeBase("a", Parse(R"(
<http://a/1> <http://a/p> "ab xy" .
<http://a/2> <http://a/p> "ab qq" .
)")).ok());
  ASSERT_TRUE(c.Finalize().ok());
  QGramBlocking::Options opts;
  opts.max_df_fraction = 1.0;
  BlockCollection blocks = QGramBlocking(opts).Build(c);
  bool found_ab = false;
  for (const Block& b : blocks.blocks()) {
    if (blocks.KeyString(b.key) == "g:ab") found_ab = true;
  }
  EXPECT_TRUE(found_ab);
}

TEST(QGramBlockingTest, GramCapLimitsKeys) {
  EntityCollection c;
  ASSERT_TRUE(c.AddKnowledgeBase("a", Parse(R"(
<http://a/1> <http://a/p> "alongertokenwithmanygrams anotherlongtoken" .
<http://a/2> <http://a/p> "alongertokenwithmanygrams anotherlongtoken" .
)")).ok());
  ASSERT_TRUE(c.Finalize().ok());
  QGramBlocking::Options tight;
  tight.max_df_fraction = 1.0;
  tight.max_grams_per_entity = 4;
  QGramBlocking::Options loose;
  loose.max_df_fraction = 1.0;
  loose.max_grams_per_entity = 0;
  EXPECT_LE(QGramBlocking(tight).Build(c).num_blocks(),
            QGramBlocking(loose).Build(c).num_blocks());
}

TEST(QGramBlockingTest, DeterministicBlockOrder) {
  datagen::LodCloudConfig cfg;
  cfg.seed = 601;
  cfg.num_real_entities = 150;
  cfg.num_kbs = 3;
  auto cloud = datagen::GenerateLodCloud(cfg);
  ASSERT_TRUE(cloud.ok());
  auto c = cloud->BuildCollection();
  ASSERT_TRUE(c.ok());
  const BlockCollection a = QGramBlocking().Build(*c);
  const BlockCollection b = QGramBlocking().Build(*c);
  ASSERT_EQ(a.num_blocks(), b.num_blocks());
  for (size_t i = 0; i < a.num_blocks(); ++i) {
    EXPECT_EQ(a.KeyString(a.block(i).key), b.KeyString(b.block(i).key));
    EXPECT_EQ(a.block(i).entities, b.block(i).entities);
  }
}

// ---------------------------------------------------------------------------
// SortedNeighborhoodBlocking
// ---------------------------------------------------------------------------

TEST(SortedNeighborhoodTest, AdjacentKeysShareWindows) {
  EntityCollection c;
  ASSERT_TRUE(c.AddKnowledgeBase("a", Parse(R"(
<http://a/1> <http://a/p> "knossos" .
<http://a/2> <http://a/p> "knossoz" .
<http://a/3> <http://a/p> "zzzzdistant" .
)")).ok());
  ASSERT_TRUE(c.Finalize().ok());
  SortedNeighborhoodBlocking blocking;
  BlockCollection blocks = blocking.Build(c);
  const EntityId e1 = c.FindByIri("http://a/1");
  const EntityId e2 = c.FindByIri("http://a/2");
  bool together = false;
  for (const Block& b : blocks.blocks()) {
    if (std::binary_search(b.entities.begin(), b.entities.end(), e1) &&
        std::binary_search(b.entities.begin(), b.entities.end(), e2)) {
      together = true;
    }
  }
  EXPECT_TRUE(together) << "near-identical keys sort adjacently";
}

TEST(SortedNeighborhoodTest, WindowBoundsBlockSize) {
  datagen::LodCloudConfig cfg;
  cfg.seed = 607;
  cfg.num_real_entities = 200;
  cfg.num_kbs = 3;
  auto cloud = datagen::GenerateLodCloud(cfg);
  ASSERT_TRUE(cloud.ok());
  auto c = cloud->BuildCollection();
  ASSERT_TRUE(c.ok());
  SortedNeighborhoodBlocking::Options opts;
  opts.window_size = 6;
  BlockCollection blocks = SortedNeighborhoodBlocking(opts).Build(*c);
  EXPECT_GT(blocks.num_blocks(), 0u);
  for (const Block& b : blocks.blocks()) {
    EXPECT_LE(b.size(), 6u);
  }
}

// ---------------------------------------------------------------------------
// Generator typo knob
// ---------------------------------------------------------------------------

TEST(TypoTest, TypoRateValidated) {
  datagen::LodCloudConfig cfg;
  cfg.typo_rate = 1.5;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(TypoTest, TyposDegradeTokenBlockingButNotQGram) {
  datagen::LodCloudConfig clean_cfg;
  clean_cfg.seed = 611;
  clean_cfg.num_real_entities = 300;
  clean_cfg.num_kbs = 3;
  clean_cfg.center_kbs = 3;
  datagen::LodCloudConfig noisy_cfg = clean_cfg;
  noisy_cfg.typo_rate = 0.4;

  auto eval_pc = [](const datagen::LodCloudConfig& cfg,
                    const BlockingMethod& method) {
    auto cloud = datagen::GenerateLodCloud(cfg);
    EXPECT_TRUE(cloud.ok());
    auto c = cloud->BuildCollection();
    EXPECT_TRUE(c.ok());
    auto truth = GroundTruth::FromCloud(*cloud, *c);
    EXPECT_TRUE(truth.ok());
    return EvaluateBlocks(method.Build(*c), *c, ResolutionMode::kCleanClean,
                          *truth)
        .pair_completeness;
  };
  TokenBlocking token;
  const double token_clean = eval_pc(clean_cfg, token);
  const double token_noisy = eval_pc(noisy_cfg, token);
  EXPECT_LT(token_noisy, token_clean)
      << "typos must break exact token keys";

  QGramBlocking::Options gopts;
  gopts.max_df_fraction = 0.2;
  QGramBlocking qgram(gopts);
  const double qgram_noisy = eval_pc(noisy_cfg, qgram);
  EXPECT_GT(qgram_noisy, token_noisy)
      << "q-grams must be more typo-robust than exact tokens";
}

TEST(TypoTest, CorruptionPreservesDeterminism) {
  datagen::LodCloudConfig cfg;
  cfg.seed = 613;
  cfg.num_real_entities = 100;
  cfg.num_kbs = 2;
  cfg.typo_rate = 0.5;
  auto a = datagen::GenerateLodCloud(cfg);
  auto b = datagen::GenerateLodCloud(cfg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->total_triples(), b->total_triples());
  ASSERT_EQ(a->kbs[0].triples.size(), b->kbs[0].triples.size());
  for (size_t i = 0; i < a->kbs[0].triples.size(); i += 13) {
    EXPECT_EQ(a->kbs[0].triples[i], b->kbs[0].triples[i]);
  }
}

// ---------------------------------------------------------------------------
// Wall-clock budget
// ---------------------------------------------------------------------------

TEST(TimeBudgetTest, ZeroMillisMeansUnlimited) {
  datagen::LodCloudConfig cfg;
  cfg.seed = 617;
  cfg.num_real_entities = 150;
  cfg.num_kbs = 3;
  auto cloud = datagen::GenerateLodCloud(cfg);
  ASSERT_TRUE(cloud.ok());
  auto c = cloud->BuildCollection();
  ASSERT_TRUE(c.ok());
  BlockCollection blocks = TokenBlocking().Build(*c);
  auto candidates = MetaBlocking().Prune(blocks, *c);
  NeighborGraph graph(*c);
  SimilarityEvaluator evaluator(*c);
  ProgressiveOptions opts;
  opts.budget_millis = 0;
  opts.enable_update_phase = false;
  ProgressiveResolver resolver(*c, graph, evaluator, opts);
  const ProgressiveResult result = resolver.Resolve(candidates);
  EXPECT_EQ(result.run.comparisons_executed, candidates.size());
}

}  // namespace
}  // namespace minoan
