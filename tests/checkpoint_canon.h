// Copyright 2026 The MinoanER Authors.
// CanonicalizeCheckpoint: shared helper for byte-identity parity tests
// (obs_test, server_test). A session checkpoint is deterministic except for
// its wall-clock doubles; zeroing those makes two checkpoints of identical
// runs compare equal as strings.

#ifndef MINOAN_TESTS_CHECKPOINT_CANON_H_
#define MINOAN_TESTS_CHECKPOINT_CANON_H_

#include <cstdint>
#include <sstream>
#include <string>

#include "gtest/gtest.h"
#include "util/serde.h"

namespace minoan {
namespace testutil {

/// Rewrites a session checkpoint with every wall-clock double zeroed (phase
/// millis and the cumulative resolve time). Everything else — including the
/// similarity doubles inside the resolver state, which are deterministic —
/// passes through bit-exact, so two checkpoints of identical runs compare
/// equal as strings.
inline std::string CanonicalizeCheckpoint(const std::string& bytes) {
  std::istringstream in(bytes);
  std::ostringstream out;

  std::string magic;
  EXPECT_TRUE(serde::ReadString(in, magic));
  EXPECT_EQ(magic, "MNER-SESS-v1");
  serde::WriteString(out, magic);

  uint32_t u32 = 0;
  for (int i = 0; i < 2; ++i) {  // num_entities, num_kbs
    EXPECT_TRUE(serde::ReadU32(in, u32));
    serde::WriteU32(out, u32);
  }
  uint64_t u64 = 0;
  // total_triples, options digest, then the six static-phase counters.
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(serde::ReadU64(in, u64));
    serde::WriteU64(out, u64);
  }
  double mean_weight = 0;  // deterministic — compared, not zeroed
  EXPECT_TRUE(serde::ReadDouble(in, mean_weight));
  serde::WriteDouble(out, mean_weight);
  for (int i = 0; i < 2; ++i) {  // nominations, distinct_pairs
    EXPECT_TRUE(serde::ReadU64(in, u64));
    serde::WriteU64(out, u64);
  }

  uint64_t num_phases = 0;
  EXPECT_TRUE(serde::ReadU64(in, num_phases));
  serde::WriteU64(out, num_phases);
  for (uint64_t i = 0; i < num_phases; ++i) {
    std::string name;
    double millis = 0;
    uint64_t cardinality = 0;
    EXPECT_TRUE(serde::ReadString(in, name));
    EXPECT_TRUE(serde::ReadDouble(in, millis));
    EXPECT_TRUE(serde::ReadU64(in, cardinality));
    serde::WriteString(out, name);
    serde::WriteDouble(out, 0.0);  // wall clock: varies run to run
    serde::WriteU64(out, cardinality);
  }
  double resolve_millis = 0;
  EXPECT_TRUE(serde::ReadDouble(in, resolve_millis));
  serde::WriteDouble(out, 0.0);  // wall clock

  // Resolver loop state: fully deterministic, copied verbatim.
  out << in.rdbuf();
  return out.str();
}

}  // namespace testutil
}  // namespace minoan

#endif  // MINOAN_TESTS_CHECKPOINT_CANON_H_
