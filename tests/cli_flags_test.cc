// Tests for the shared CLI flag parser: grammar, numeric accessors'
// exit(2)-on-garbage contract, and unknown-flag detection.

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "util/cli_flags.h"

namespace minoan {
namespace cli {
namespace {

Flags Parse(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  std::vector<char*> argv = {const_cast<char*>("minoan"),
                             const_cast<char*>("verb")};
  for (std::string& arg : storage) argv.push_back(arg.data());
  return Flags(static_cast<int>(argv.size()), argv.data(), 2);
}

TEST(CliFlagsTest, ParsesValuesBoolsAndPositionals) {
  const Flags flags = Parse({"corpus", "--threshold", "0.4", "--stream",
                             "--out=links.nt", "--budget", "-5", "extra"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "corpus");
  EXPECT_EQ(flags.positional()[1], "extra");
  EXPECT_EQ(flags.Get("threshold", ""), "0.4");
  EXPECT_DOUBLE_EQ(flags.GetDouble("threshold", 0), 0.4);
  EXPECT_TRUE(flags.Has("stream"));
  EXPECT_EQ(flags.Get("stream", ""), "true");
  EXPECT_EQ(flags.Get("out", ""), "links.nt");
  // A single leading dash is a value, not a flag.
  EXPECT_EQ(flags.Get("budget", ""), "-5");
  EXPECT_EQ(flags.Get("absent", "fallback"), "fallback");
  EXPECT_EQ(flags.GetInt("absent", 7), 7u);
}

TEST(CliFlagsTest, ByteSizeSuffixes) {
  const Flags flags = Parse({"--a", "64k", "--b=2MB", "--c", "1g", "--d",
                             "4096"});
  EXPECT_EQ(flags.GetByteSize("a", 0), 64u << 10);
  EXPECT_EQ(flags.GetByteSize("b", 0), 2u << 20);
  EXPECT_EQ(flags.GetByteSize("c", 0), 1u << 30);
  EXPECT_EQ(flags.GetByteSize("d", 0), 4096u);
}

TEST(CliFlagsTest, MalformedNumbersExitWithCodeTwo) {
  EXPECT_EXIT(Parse({"--threshold", "high"}).GetDouble("threshold", 0),
              ::testing::ExitedWithCode(2), "expects a number");
  EXPECT_EXIT(Parse({"--budget", "12x"}).GetInt("budget", 0),
              ::testing::ExitedWithCode(2), "non-negative integer");
  EXPECT_EXIT(Parse({"--mem", "64q"}).GetByteSize("mem", 0),
              ::testing::ExitedWithCode(2), "byte size");
}

TEST(CliFlagsTest, UnknownFlagsAreReportedSorted) {
  const Flags flags =
      Parse({"--theshold", "0.4", "--out", "x", "--bogus", "--seeds"});
  const std::vector<std::string> unknown =
      flags.UnknownFlags({"out", "seeds", "threshold"});
  ASSERT_EQ(unknown.size(), 2u);
  EXPECT_EQ(unknown[0], "bogus");
  EXPECT_EQ(unknown[1], "theshold");
  EXPECT_TRUE(flags.UnknownFlags({"bogus", "out", "seeds", "theshold"})
                  .empty());
}

TEST(CliFlagsTest, EmptyAllowListFlagsEverything) {
  const Flags flags = Parse({"--anything", "1"});
  const std::vector<std::string> unknown = flags.UnknownFlags({});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "anything");
}

}  // namespace
}  // namespace cli
}  // namespace minoan
