// Unit tests for the synthetic LOD-cloud generator: configuration
// validation, determinism, structural properties (center vs periphery), and
// file round-trips.

#include <filesystem>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "datagen/corpus.h"
#include "datagen/lod_generator.h"
#include "eval/ground_truth.h"
#include "gtest/gtest.h"
#include "kb/stats.h"
#include "rdf/ntriples.h"
#include "text/similarity.h"

namespace minoan {
namespace datagen {
namespace {

LodCloudConfig SmallConfig(uint64_t seed = 7) {
  LodCloudConfig cfg;
  cfg.seed = seed;
  cfg.num_real_entities = 300;
  cfg.num_kbs = 5;
  cfg.center_kbs = 2;
  return cfg;
}

// ---------------------------------------------------------------------------
// Corpus
// ---------------------------------------------------------------------------

TEST(CorpusTest, PseudoWordsPronounceableAndSized) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const std::string w = MakePseudoWord(rng, 2);
    EXPECT_GE(w.size(), 4u);
    for (char c : w) {
      EXPECT_TRUE(c >= 'a' && c <= 'z');
    }
  }
}

TEST(CorpusTest, WordPoolDistinct) {
  Rng rng(5);
  WordPool pool(rng, 500, 2, 3);
  EXPECT_EQ(pool.size(), 500u);
  std::set<std::string> seen;
  for (uint32_t i = 0; i < pool.size(); ++i) seen.insert(pool.word(i));
  EXPECT_EQ(seen.size(), 500u);
}

TEST(CorpusTest, EntityTypeNamesAndIris) {
  EXPECT_STREQ(EntityTypeName(EntityType::kPerson), "person");
  EXPECT_STREQ(EntityTypeName(EntityType::kEvent), "event");
  EXPECT_NE(EntityTypeClassIri(EntityType::kPlace)
                .find("schema.minoan.org/class/place"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Config validation
// ---------------------------------------------------------------------------

TEST(ConfigTest, DefaultIsValid) {
  EXPECT_TRUE(LodCloudConfig{}.Validate().ok());
}

TEST(ConfigTest, RejectsZeroEntities) {
  LodCloudConfig cfg;
  cfg.num_real_entities = 0;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(ConfigTest, RejectsCenterExceedingKbs) {
  LodCloudConfig cfg;
  cfg.num_kbs = 2;
  cfg.center_kbs = 3;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(ConfigTest, RejectsOutOfRangeFractions) {
  LodCloudConfig cfg;
  cfg.center_token_overlap = 1.5;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = LodCloudConfig{};
  cfg.same_as_rate = -0.1;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = LodCloudConfig{};
  cfg.periphery_coverage = 2.0;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(ConfigTest, RejectsBadFactTokenRange) {
  LodCloudConfig cfg;
  cfg.min_fact_tokens = 9;
  cfg.max_fact_tokens = 3;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(ConfigTest, GenerateRejectsInvalid) {
  LodCloudConfig cfg;
  cfg.num_kbs = 0;
  EXPECT_FALSE(GenerateLodCloud(cfg).ok());
}

// ---------------------------------------------------------------------------
// Generation structure
// ---------------------------------------------------------------------------

TEST(GeneratorTest, DeterministicForSeed) {
  auto a = GenerateLodCloud(SmallConfig(11));
  auto b = GenerateLodCloud(SmallConfig(11));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->kbs.size(), b->kbs.size());
  EXPECT_EQ(a->total_triples(), b->total_triples());
  EXPECT_EQ(a->truth.size(), b->truth.size());
  for (size_t k = 0; k < a->kbs.size(); ++k) {
    ASSERT_EQ(a->kbs[k].triples.size(), b->kbs[k].triples.size());
    for (size_t i = 0; i < a->kbs[k].triples.size(); i += 97) {
      EXPECT_EQ(a->kbs[k].triples[i], b->kbs[k].triples[i]);
    }
  }
}

TEST(GeneratorTest, SeedsChangeOutput) {
  auto a = GenerateLodCloud(SmallConfig(1));
  auto b = GenerateLodCloud(SmallConfig(2));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->total_triples(), b->total_triples());
}

TEST(GeneratorTest, KbNamesMarkCenterAndPeriphery) {
  auto cloud = GenerateLodCloud(SmallConfig());
  ASSERT_TRUE(cloud.ok());
  ASSERT_EQ(cloud->kbs.size(), 5u);
  EXPECT_TRUE(cloud->kbs[0].is_center);
  EXPECT_TRUE(cloud->kbs[1].is_center);
  EXPECT_FALSE(cloud->kbs[2].is_center);
  EXPECT_NE(cloud->kbs[0].name.find("center"), std::string::npos);
  EXPECT_NE(cloud->kbs[4].name.find("periphery"), std::string::npos);
}

TEST(GeneratorTest, CenterCoversMoreThanPeriphery) {
  auto cloud = GenerateLodCloud(SmallConfig());
  ASSERT_TRUE(cloud.ok());
  auto collection = cloud->BuildCollection();
  ASSERT_TRUE(collection.ok());
  const uint32_t center_min = std::min(collection->kb(0).num_entities(),
                                       collection->kb(1).num_entities());
  for (uint32_t k = 2; k < collection->num_kbs(); ++k) {
    EXPECT_LT(collection->kb(k).num_entities(), center_min)
        << "periphery KB " << k << " should describe fewer entities";
  }
}

TEST(GeneratorTest, TruthPairsAreCrossKb) {
  auto cloud = GenerateLodCloud(SmallConfig());
  ASSERT_TRUE(cloud.ok());
  auto collection = cloud->BuildCollection();
  ASSERT_TRUE(collection.ok());
  for (const TruthPair& p : cloud->truth) {
    const EntityId a = collection->FindByIri(p.iri_a);
    const EntityId b = collection->FindByIri(p.iri_b);
    ASSERT_NE(a, kInvalidEntity) << p.iri_a;
    ASSERT_NE(b, kInvalidEntity) << p.iri_b;
    EXPECT_TRUE(collection->CrossKb(a, b));
  }
}

TEST(GeneratorTest, ClusterMapConsistentWithTruth) {
  auto cloud = GenerateLodCloud(SmallConfig());
  ASSERT_TRUE(cloud.ok());
  std::unordered_map<std::string, uint32_t> cluster(
      cloud->iri_to_cluster.begin(), cloud->iri_to_cluster.end());
  for (const TruthPair& p : cloud->truth) {
    ASSERT_TRUE(cluster.count(p.iri_a));
    ASSERT_TRUE(cluster.count(p.iri_b));
    EXPECT_EQ(cluster[p.iri_a], cluster[p.iri_b]);
  }
}

TEST(GeneratorTest, SameAsLinksAreTrueMatches) {
  LodCloudConfig cfg = SmallConfig();
  cfg.same_as_rate = 0.5;
  auto cloud = GenerateLodCloud(cfg);
  ASSERT_TRUE(cloud.ok());
  auto collection = cloud->BuildCollection();
  ASSERT_TRUE(collection.ok());
  auto truth = GroundTruth::FromCloud(*cloud, *collection);
  ASSERT_TRUE(truth.ok());
  ASSERT_GT(collection->same_as_links().size(), 0u);
  for (const SameAsLink& link : collection->same_as_links()) {
    EXPECT_TRUE(truth->Matches(link.a, link.b));
  }
}

TEST(GeneratorTest, SameAsRateZeroMeansNoLinks) {
  LodCloudConfig cfg = SmallConfig();
  cfg.same_as_rate = 0.0;
  auto cloud = GenerateLodCloud(cfg);
  ASSERT_TRUE(cloud.ok());
  auto collection = cloud->BuildCollection();
  ASSERT_TRUE(collection.ok());
  EXPECT_EQ(collection->same_as_links().size(), 0u);
}

TEST(GeneratorTest, RelationsMirrorRealGraph) {
  auto cloud = GenerateLodCloud(SmallConfig());
  ASSERT_TRUE(cloud.ok());
  auto collection = cloud->BuildCollection();
  ASSERT_TRUE(collection.ok());
  uint64_t relations = 0;
  for (const EntityDescription& e : collection->entities()) {
    relations += e.relations.size();
  }
  EXPECT_GT(relations, 0u) << "KBs must assert relation edges";
}

TEST(GeneratorTest, CenterDuplicatesShareMoreTokens) {
  LodCloudConfig cfg = SmallConfig(13);
  cfg.center_token_overlap = 0.9;
  cfg.periphery_token_overlap = 0.2;
  auto cloud = GenerateLodCloud(cfg);
  ASSERT_TRUE(cloud.ok());
  auto collection = cloud->BuildCollection();
  ASSERT_TRUE(collection.ok());
  auto avg_jaccard = [&](bool center_only) {
    double sum = 0;
    int n = 0;
    for (const TruthPair& p : cloud->truth) {
      const EntityId a = collection->FindByIri(p.iri_a);
      const EntityId b = collection->FindByIri(p.iri_b);
      const bool both_center = collection->entity(a).kb < cfg.center_kbs &&
                               collection->entity(b).kb < cfg.center_kbs;
      const bool both_periph = collection->entity(a).kb >= cfg.center_kbs &&
                               collection->entity(b).kb >= cfg.center_kbs;
      if ((center_only && both_center) || (!center_only && both_periph)) {
        sum += JaccardSimilarity(collection->entity(a).tokens,
                                 collection->entity(b).tokens);
        ++n;
      }
    }
    return n > 0 ? sum / n : 0.0;
  };
  const double center = avg_jaccard(true);
  const double periphery = avg_jaccard(false);
  EXPECT_GT(center, periphery + 0.1)
      << "highly similar (center) vs somehow similar (periphery)";
}

TEST(GeneratorTest, SkewedInterlinking) {
  LodCloudConfig cfg = SmallConfig(17);
  cfg.num_kbs = 8;
  cfg.center_kbs = 2;
  cfg.same_as_rate = 0.4;
  auto cloud = GenerateLodCloud(cfg);
  ASSERT_TRUE(cloud.ok());
  auto collection = cloud->BuildCollection();
  ASSERT_TRUE(collection.ok());
  const CloudStats stats = ComputeCloudStats(*collection);
  EXPECT_GT(stats.link_gini, 0.2) << "link mass should be concentrated";
  EXPECT_GT(stats.top_decile_link_share, 0.15);
}

TEST(GeneratorTest, ProprietaryVocabularyRateHonored) {
  LodCloudConfig cfg = SmallConfig(19);
  cfg.num_kbs = 10;
  cfg.center_kbs = 2;
  cfg.proprietary_vocab_rate = 1.0;
  auto cloud = GenerateLodCloud(cfg);
  ASSERT_TRUE(cloud.ok());
  auto collection = cloud->BuildCollection();
  ASSERT_TRUE(collection.ok());
  const CloudStats stats = ComputeCloudStats(*collection);
  // All non-core vocabularies are per-KB; the shared schema.minoan.org
  // class namespace is the only non-proprietary one possible.
  EXPECT_GT(stats.proprietary_ratio, 0.8);
}

// ---------------------------------------------------------------------------
// File round-trip
// ---------------------------------------------------------------------------

TEST(GeneratorTest, WriteToAndReparse) {
  const std::string dir = ::testing::TempDir() + "/lodcloud";
  std::filesystem::remove_all(dir);
  auto cloud = GenerateLodCloud(SmallConfig(23));
  ASSERT_TRUE(cloud.ok());
  ASSERT_TRUE(cloud->WriteTo(dir).ok());

  // Every KB file reparses to the same triple count, strictly.
  rdf::NTriplesOptions strict;
  strict.strict = true;
  rdf::NTriplesParser parser(strict);
  EntityCollection reparsed;
  for (const GeneratedKb& kb : cloud->kbs) {
    auto triples = parser.ParseFile(dir + "/" + kb.name + ".nt");
    ASSERT_TRUE(triples.ok()) << triples.status();
    EXPECT_EQ(triples->size(), kb.triples.size());
    ASSERT_TRUE(reparsed.AddKnowledgeBase(kb.name, *triples).ok());
  }
  ASSERT_TRUE(reparsed.Finalize().ok());

  // The ground-truth TSV loads against the reparsed collection.
  auto truth = GroundTruth::FromTsv(dir + "/ground_truth.tsv", reparsed);
  ASSERT_TRUE(truth.ok()) << truth.status();
  EXPECT_GT(truth->num_pairs(), 0u);
}

TEST(GeneratorTest, TruthSizeMatchesClosure) {
  auto cloud = GenerateLodCloud(SmallConfig(29));
  ASSERT_TRUE(cloud.ok());
  auto collection = cloud->BuildCollection();
  ASSERT_TRUE(collection.ok());
  auto truth = GroundTruth::FromCloud(*cloud, *collection);
  ASSERT_TRUE(truth.ok());
  // The generator emits all unordered cross-KB pairs per real entity, whose
  // closure equals exactly those pairs (IRIs per KB are distinct entities).
  EXPECT_EQ(truth->num_pairs(), cloud->truth.size());
}

}  // namespace
}  // namespace datagen
}  // namespace minoan
