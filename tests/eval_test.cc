// Unit tests for the eval module: ground truth, blocking/matching metrics,
// progressive recall curves & AUC, and the quality-aspect metrics.

#include <cmath>

#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "eval/progressive_metrics.h"
#include "gtest/gtest.h"
#include "rdf/ntriples.h"

namespace minoan {
namespace {

std::vector<rdf::Triple> Parse(const std::string& doc) {
  rdf::NTriplesParser parser;
  auto result = parser.ParseString(doc);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

// ---------------------------------------------------------------------------
// GroundTruth
// ---------------------------------------------------------------------------

TEST(GroundTruthTest, TransitiveClosureTaken) {
  GroundTruth truth(6, {{0, 1}, {1, 2}, {4, 5}});
  EXPECT_TRUE(truth.Matches(0, 2));  // via closure
  EXPECT_TRUE(truth.Matches(4, 5));
  EXPECT_FALSE(truth.Matches(0, 4));
  EXPECT_FALSE(truth.Matches(3, 3));
  // Pairs: C(3,2) + C(2,2) = 3 + 1.
  EXPECT_EQ(truth.num_pairs(), 4u);
  EXPECT_EQ(truth.num_matchable_entities(), 5u);
  EXPECT_EQ(truth.clusters().size(), 2u);
}

TEST(GroundTruthTest, SingletonsHaveNoCluster) {
  GroundTruth truth(4, {{0, 1}});
  EXPECT_EQ(truth.ClusterOf(2), kInvalidEntity);
  EXPECT_NE(truth.ClusterOf(0), kInvalidEntity);
  EXPECT_EQ(truth.ClusterOf(0), truth.ClusterOf(1));
}

TEST(GroundTruthTest, EmptyTruth) {
  GroundTruth truth(3, {});
  EXPECT_EQ(truth.num_pairs(), 0u);
  EXPECT_FALSE(truth.Matches(0, 1));
}

// ---------------------------------------------------------------------------
// Blocking metrics
// ---------------------------------------------------------------------------

TEST(MetricsTest, CandidateEvaluation) {
  GroundTruth truth(6, {{0, 3}, {1, 4}});
  std::vector<Comparison> candidates = {
      Comparison(0, 3),  // hit
      Comparison(1, 5),  // miss
      Comparison(2, 4),  // miss
      Comparison(0, 3),  // duplicate hit (counted once for PC)
  };
  const BlockingMetrics m = EvaluateCandidates(candidates, truth, 9);
  EXPECT_EQ(m.comparisons, 4u);
  EXPECT_EQ(m.matching_pairs, 1u);
  EXPECT_EQ(m.truth_pairs, 2u);
  EXPECT_DOUBLE_EQ(m.pair_completeness, 0.5);
  EXPECT_DOUBLE_EQ(m.pair_quality, 0.25);
  EXPECT_NEAR(m.reduction_ratio, 1.0 - 4.0 / 9.0, 1e-12);
}

TEST(MetricsTest, BruteForceCounts) {
  EntityCollection c;
  ASSERT_TRUE(c.AddKnowledgeBase("a", Parse(R"(
<http://a/1> <http://a/p> "x" .
<http://a/2> <http://a/p> "y" .
<http://a/3> <http://a/p> "z" .
)")).ok());
  ASSERT_TRUE(c.AddKnowledgeBase("b", Parse(R"(
<http://b/1> <http://b/p> "x" .
<http://b/2> <http://b/p> "y" .
)")).ok());
  ASSERT_TRUE(c.Finalize().ok());
  // n = 5: dirty = 10; clean-clean = 10 - C(3,2) - C(2,2) = 10 - 3 - 1 = 6.
  EXPECT_EQ(BruteForceComparisons(c, ResolutionMode::kDirty), 10u);
  EXPECT_EQ(BruteForceComparisons(c, ResolutionMode::kCleanClean), 6u);
}

TEST(MetricsTest, MatchingMetricsMath) {
  GroundTruth truth(6, {{0, 3}, {1, 4}});
  std::vector<MatchEvent> matches = {
      {1, 0, 3, 0.9},  // correct
      {2, 2, 5, 0.8},  // wrong
      {3, 0, 3, 0.7},  // duplicate (ignored)
  };
  const MatchingMetrics m = EvaluateMatches(matches, truth);
  EXPECT_EQ(m.emitted, 2u);
  EXPECT_EQ(m.correct, 1u);
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
  EXPECT_DOUBLE_EQ(m.f1, 0.5);
}

TEST(MetricsTest, EmptyMatchSet) {
  GroundTruth truth(4, {{0, 1}});
  const MatchingMetrics m = EvaluateMatches({}, truth);
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
}

// ---------------------------------------------------------------------------
// Progressive recall curve & AUC
// ---------------------------------------------------------------------------

ResolutionRun MakeRun(std::vector<MatchEvent> matches, uint64_t executed) {
  ResolutionRun run;
  run.matches = std::move(matches);
  run.comparisons_executed = executed;
  return run;
}

TEST(CurveTest, CurvePointsAtCorrectMatches) {
  GroundTruth truth(8, {{0, 4}, {1, 5}, {2, 6}, {3, 7}});
  const ResolutionRun run = MakeRun(
      {
          {2, 0, 4, 0.9},   // correct at comparison 2
          {5, 1, 2, 0.8},   // wrong pair: no recall change
          {7, 1, 5, 0.7},   // correct at comparison 7
      },
      10);
  const auto curve = ProgressiveRecallCurve(run, truth);
  // (0,0), (2,0.25), (7,0.5), (10,0.5).
  ASSERT_EQ(curve.size(), 4u);
  EXPECT_EQ(curve[1].comparisons, 2u);
  EXPECT_DOUBLE_EQ(curve[1].recall, 0.25);
  EXPECT_EQ(curve[2].comparisons, 7u);
  EXPECT_DOUBLE_EQ(curve[2].recall, 0.5);
  EXPECT_EQ(curve[3].comparisons, 10u);
  EXPECT_DOUBLE_EQ(curve[3].recall, 0.5);
}

TEST(CurveTest, AucStepIntegration) {
  GroundTruth truth(4, {{0, 2}, {1, 3}});
  // Recall jumps to 0.5 at comparison 1 and to 1.0 at 5; horizon 10.
  const ResolutionRun run = MakeRun({{1, 0, 2, 0.9}, {5, 1, 3, 0.8}}, 10);
  // Area = 0*(1) + 0.5*(5-1) + 1.0*(10-5) = 7 over 10.
  EXPECT_NEAR(ProgressiveRecallAuc(run, truth, 10), 0.7, 1e-12);
}

TEST(CurveTest, AucEarlyBeatsLate) {
  GroundTruth truth(4, {{0, 2}, {1, 3}});
  const ResolutionRun early = MakeRun({{1, 0, 2, 1}, {2, 1, 3, 1}}, 100);
  const ResolutionRun late = MakeRun({{98, 0, 2, 1}, {99, 1, 3, 1}}, 100);
  EXPECT_GT(ProgressiveRecallAuc(early, truth, 100),
            ProgressiveRecallAuc(late, truth, 100) * 10);
}

TEST(CurveTest, AucDefaultHorizonIsRunLength) {
  GroundTruth truth(4, {{0, 2}});
  const ResolutionRun run = MakeRun({{1, 0, 2, 1}}, 4);
  // Area = 1.0 * (4-1) / 4.
  EXPECT_NEAR(ProgressiveRecallAuc(run, truth), 0.75, 1e-12);
}

TEST(CurveTest, EmptyRunScoresZero) {
  GroundTruth truth(4, {{0, 2}});
  const ResolutionRun run = MakeRun({}, 0);
  EXPECT_DOUBLE_EQ(ProgressiveRecallAuc(run, truth, 0), 0.0);
}

TEST(TruncateTest, CutsAtBudget) {
  const ResolutionRun run =
      MakeRun({{1, 0, 2, 1}, {5, 1, 3, 1}, {9, 4, 5, 1}}, 10);
  const ResolutionRun cut = TruncateRun(run, 5);
  EXPECT_EQ(cut.comparisons_executed, 5u);
  ASSERT_EQ(cut.matches.size(), 2u);
  EXPECT_EQ(cut.matches.back().comparisons_done, 5u);
}

TEST(TruncateTest, BudgetBeyondRunKeepsAll) {
  const ResolutionRun run = MakeRun({{1, 0, 2, 1}}, 3);
  const ResolutionRun cut = TruncateRun(run, 100);
  EXPECT_EQ(cut.comparisons_executed, 3u);
  EXPECT_EQ(cut.matches.size(), 1u);
}

// ---------------------------------------------------------------------------
// Quality aspects
// ---------------------------------------------------------------------------

/// Fixture: two real entities, each described in both KBs with partly
/// disjoint values; e1's descriptions are related to e2's within each KB.
struct QualityFixture {
  EntityCollection collection;
  EntityId a1, a2, b1, b2;

  QualityFixture() {
    EXPECT_TRUE(collection.AddKnowledgeBase("a", Parse(R"(
<http://a/1> <http://a/p> "red" .
<http://a/1> <http://a/q> "round" .
<http://a/2> <http://a/p> "blue" .
<http://a/2> <http://a/q> "matte" .
<http://a/1> <http://a/rel> <http://a/2> .
)")).ok());
    EXPECT_TRUE(collection.AddKnowledgeBase("b", Parse(R"(
<http://b/1> <http://b/p> "red" .
<http://b/1> <http://b/q> "shiny" .
<http://b/2> <http://b/p> "blue" .
<http://b/2> <http://b/q> "heavy" .
<http://b/1> <http://b/rel> <http://b/2> .
)")).ok());
    EXPECT_TRUE(collection.Finalize().ok());
    a1 = collection.FindByIri("http://a/1");
    a2 = collection.FindByIri("http://a/2");
    b1 = collection.FindByIri("http://b/1");
    b2 = collection.FindByIri("http://b/2");
  }

  GroundTruth Truth() const {
    return GroundTruth(collection.num_entities(), {{a1, b1}, {a2, b2}});
  }
};

TEST(QualityTest, NothingResolvedScoresFloor) {
  QualityFixture f;
  const GroundTruth truth = f.Truth();
  NeighborGraph graph(f.collection);
  const ResolutionRun run = MakeRun({}, 0);
  const QualityAspects q =
      EvaluateQualityAspects(run, truth, f.collection, graph);
  EXPECT_DOUBLE_EQ(q.entity_coverage, 0.0);
  EXPECT_DOUBLE_EQ(q.relationship_completeness, 0.0);
  // Largest fragment is a single description: its own value share.
  EXPECT_GT(q.attribute_completeness, 0.0);
  EXPECT_LT(q.attribute_completeness, 1.0);
}

TEST(QualityTest, FullResolutionScoresOne) {
  QualityFixture f;
  const GroundTruth truth = f.Truth();
  NeighborGraph graph(f.collection);
  const ResolutionRun run =
      MakeRun({{1, f.a1, f.b1, 0.9}, {2, f.a2, f.b2, 0.8}}, 2);
  const QualityAspects q =
      EvaluateQualityAspects(run, truth, f.collection, graph);
  EXPECT_DOUBLE_EQ(q.attribute_completeness, 1.0);
  EXPECT_DOUBLE_EQ(q.entity_coverage, 1.0);
  EXPECT_DOUBLE_EQ(q.relationship_completeness, 1.0);
}

TEST(QualityTest, PartialResolutionInBetween) {
  QualityFixture f;
  const GroundTruth truth = f.Truth();
  NeighborGraph graph(f.collection);
  // Only entity 1 resolved: coverage 1/2; the a1-a2 and b1-b2 relation
  // edges each have one unresolved endpoint.
  const ResolutionRun run = MakeRun({{1, f.a1, f.b1, 0.9}}, 1);
  const QualityAspects q =
      EvaluateQualityAspects(run, truth, f.collection, graph);
  EXPECT_DOUBLE_EQ(q.entity_coverage, 0.5);
  EXPECT_DOUBLE_EQ(q.relationship_completeness, 0.0);
  EXPECT_LT(q.attribute_completeness, 1.0);
  EXPECT_GT(q.attribute_completeness, 0.4);
}

TEST(QualityTest, FalsePositiveMergesDoNotCount) {
  QualityFixture f;
  const GroundTruth truth = f.Truth();
  NeighborGraph graph(f.collection);
  // Wrong merge a1-b2: no real entity resolved.
  const ResolutionRun run = MakeRun({{1, f.a1, f.b2, 0.9}}, 1);
  const QualityAspects q =
      EvaluateQualityAspects(run, truth, f.collection, graph);
  EXPECT_DOUBLE_EQ(q.entity_coverage, 0.0);
  EXPECT_DOUBLE_EQ(q.relationship_completeness, 0.0);
}

TEST(QualityTest, AttributeCompletenessGrowsWithValues) {
  QualityFixture f;
  const GroundTruth truth = f.Truth();
  NeighborGraph graph(f.collection);
  const QualityAspects none = EvaluateQualityAspects(
      MakeRun({}, 0), truth, f.collection, graph);
  const QualityAspects one = EvaluateQualityAspects(
      MakeRun({{1, f.a1, f.b1, 0.9}}, 1), truth, f.collection, graph);
  const QualityAspects both = EvaluateQualityAspects(
      MakeRun({{1, f.a1, f.b1, 0.9}, {2, f.a2, f.b2, 0.8}}, 2), truth,
      f.collection, graph);
  EXPECT_LT(none.attribute_completeness, one.attribute_completeness);
  EXPECT_LT(one.attribute_completeness, both.attribute_completeness);
}

}  // namespace
}  // namespace minoan
