// Tests for the extension features: B-cubed cluster metrics, parallel batch
// matching, and warm-start (seeded) progressive resolution.

#include <memory>
#include <set>

#include "blocking/blocking_method.h"
#include "core/minoan_er.h"
#include "datagen/lod_generator.h"
#include "eval/cluster_metrics.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "gtest/gtest.h"
#include "mapreduce/parallel_matching.h"
#include "metablocking/meta_blocking.h"
#include "progressive/resolver.h"
#include "util/hash.h"

namespace minoan {
namespace {

// ---------------------------------------------------------------------------
// B-cubed cluster metrics
// ---------------------------------------------------------------------------

ResolutionRun RunOf(std::vector<std::pair<EntityId, EntityId>> pairs) {
  ResolutionRun run;
  uint64_t i = 0;
  for (const auto& [a, b] : pairs) {
    run.matches.push_back({++i, a, b, 1.0});
  }
  run.comparisons_executed = i;
  return run;
}

TEST(BCubedTest, PerfectResolutionScoresOne) {
  // Truth: {0,1,2}, {3,4}; entity 5 singleton.
  GroundTruth truth(6, {{0, 1}, {1, 2}, {3, 4}});
  const ResolutionRun run = RunOf({{0, 1}, {1, 2}, {3, 4}});
  const ClusterMetrics m = EvaluateClusters(run, truth);
  EXPECT_DOUBLE_EQ(m.bcubed_precision, 1.0);
  EXPECT_DOUBLE_EQ(m.bcubed_recall, 1.0);
  EXPECT_DOUBLE_EQ(m.bcubed_f1, 1.0);
  EXPECT_EQ(m.clusters, 2u);
  EXPECT_EQ(m.largest_cluster, 3u);
  EXPECT_EQ(m.clustered_entities, 5u);
}

TEST(BCubedTest, NothingResolved) {
  GroundTruth truth(4, {{0, 1}, {2, 3}});
  const ClusterMetrics m = EvaluateClusters(RunOf({}), truth);
  EXPECT_DOUBLE_EQ(m.bcubed_precision, 1.0);  // singletons are pure
  EXPECT_DOUBLE_EQ(m.bcubed_recall, 0.5);     // each entity finds only itself
  EXPECT_EQ(m.clusters, 0u);
}

TEST(BCubedTest, OverMergePenalizesPrecision) {
  GroundTruth truth(4, {{0, 1}, {2, 3}});
  // Everything merged into one cluster of 4.
  const ResolutionRun run = RunOf({{0, 1}, {1, 2}, {2, 3}});
  const ClusterMetrics m = EvaluateClusters(run, truth);
  EXPECT_DOUBLE_EQ(m.bcubed_recall, 1.0);
  EXPECT_DOUBLE_EQ(m.bcubed_precision, 0.5);  // 2 of 4 members correct
}

TEST(BCubedTest, PartialMergePartialScores) {
  // Truth cluster {0,1,2}; resolved only {0,1}.
  GroundTruth truth(3, {{0, 1}, {1, 2}});
  const ClusterMetrics m = EvaluateClusters(RunOf({{0, 1}}), truth);
  EXPECT_DOUBLE_EQ(m.bcubed_precision, 1.0);
  // recall: e0: 2/3, e1: 2/3, e2: 1/3 -> mean 5/9.
  EXPECT_NEAR(m.bcubed_recall, 5.0 / 9.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Parallel batch matching
// ---------------------------------------------------------------------------

struct MatchWorld {
  std::unique_ptr<EntityCollection> collection;
  std::unique_ptr<SimilarityEvaluator> evaluator;
  std::vector<WeightedComparison> candidates;
};

MatchWorld MakeMatchWorld() {
  datagen::LodCloudConfig cfg;
  cfg.seed = 501;
  cfg.num_real_entities = 300;
  cfg.num_kbs = 4;
  cfg.center_kbs = 2;
  auto cloud = datagen::GenerateLodCloud(cfg);
  EXPECT_TRUE(cloud.ok());
  auto collection_result = cloud->BuildCollection();
  EXPECT_TRUE(collection_result.ok());
  auto collection = std::make_unique<EntityCollection>(
      std::move(collection_result).value());
  BlockCollection blocks = TokenBlocking().Build(*collection);
  auto candidates = MetaBlocking().Prune(blocks, *collection);
  auto evaluator = std::make_unique<SimilarityEvaluator>(*collection);
  return MatchWorld{std::move(collection), std::move(evaluator),
                    std::move(candidates)};
}

TEST(ParallelMatchingTest, MatchesSequentialBatchMatcher) {
  MatchWorld w = MakeMatchWorld();
  MatcherOptions mopts;
  mopts.threshold = 0.35;
  BatchMatcher sequential(*w.evaluator, mopts);
  std::vector<Comparison> order;
  for (const auto& c : w.candidates) order.emplace_back(c.a, c.b);
  const ResolutionRun seq = sequential.Run(order);

  std::set<uint64_t> seq_pairs;
  for (const MatchEvent& m : seq.matches) {
    seq_pairs.insert(PairKey(m.a, m.b));
  }
  for (uint32_t workers : {1u, 8u}) {
    mapreduce::Engine engine(workers);
    const ResolutionRun par = mapreduce::ParallelBatchMatching(
        w.candidates, *w.evaluator, 0.35, engine);
    std::set<uint64_t> par_pairs;
    for (const MatchEvent& m : par.matches) {
      par_pairs.insert(PairKey(m.a, m.b));
    }
    EXPECT_EQ(par_pairs, seq_pairs) << workers << " workers";
    EXPECT_EQ(par.comparisons_executed, w.candidates.size());
  }
}

TEST(ParallelMatchingTest, MatchesSortedByPairId) {
  MatchWorld w = MakeMatchWorld();
  mapreduce::Engine engine(4);
  const ResolutionRun run = mapreduce::ParallelBatchMatching(
      w.candidates, *w.evaluator, 0.35, engine);
  for (size_t i = 1; i < run.matches.size(); ++i) {
    EXPECT_LT(PairKey(run.matches[i - 1].a, run.matches[i - 1].b),
              PairKey(run.matches[i].a, run.matches[i].b));
  }
}

// ---------------------------------------------------------------------------
// Warm-start seeds
// ---------------------------------------------------------------------------

struct SeedWorld {
  std::unique_ptr<datagen::LodCloud> cloud;
  std::unique_ptr<EntityCollection> collection;
  std::unique_ptr<GroundTruth> truth;
  std::unique_ptr<NeighborGraph> graph;
  std::unique_ptr<SimilarityEvaluator> evaluator;
  std::vector<WeightedComparison> candidates;
};

SeedWorld MakeSeedWorld() {
  datagen::LodCloudConfig cfg;
  cfg.seed = 503;
  cfg.num_real_entities = 300;
  cfg.num_kbs = 4;
  cfg.center_kbs = 1;
  cfg.periphery_token_overlap = 0.25;
  cfg.same_as_rate = 0.3;  // plenty of existing interlinks
  auto cloud_result = datagen::GenerateLodCloud(cfg);
  EXPECT_TRUE(cloud_result.ok());
  auto cloud = std::make_unique<datagen::LodCloud>(
      std::move(cloud_result).value());
  auto collection_result = cloud->BuildCollection();
  EXPECT_TRUE(collection_result.ok());
  auto collection = std::make_unique<EntityCollection>(
      std::move(collection_result).value());
  auto truth_result = GroundTruth::FromCloud(*cloud, *collection);
  EXPECT_TRUE(truth_result.ok());
  auto truth =
      std::make_unique<GroundTruth>(std::move(truth_result).value());
  BlockCollection blocks = TokenBlocking().Build(*collection);
  auto candidates = MetaBlocking().Prune(blocks, *collection);
  auto graph = std::make_unique<NeighborGraph>(*collection);
  auto evaluator = std::make_unique<SimilarityEvaluator>(*collection);
  return SeedWorld{std::move(cloud),    std::move(collection),
                   std::move(truth),    std::move(graph),
                   std::move(evaluator), std::move(candidates)};
}

TEST(SeededResolveTest, SeedsNotReportedAsMatches) {
  SeedWorld w = MakeSeedWorld();
  ASSERT_GT(w.collection->same_as_links().size(), 0u);
  std::vector<Comparison> seeds;
  for (const SameAsLink& link : w.collection->same_as_links()) {
    seeds.emplace_back(link.a, link.b);
  }
  ProgressiveOptions opts;
  opts.matcher.threshold = 0.3;
  ProgressiveResolver resolver(*w.collection, *w.graph, *w.evaluator, opts);
  const ProgressiveResult result =
      resolver.ResolveWithSeeds(w.candidates, seeds);
  std::set<uint64_t> seed_keys;
  for (const Comparison& s : seeds) seed_keys.insert(PairKey(s.a, s.b));
  for (const MatchEvent& m : result.run.matches) {
    EXPECT_FALSE(seed_keys.count(PairKey(m.a, m.b)))
        << "seed leaked into discovered matches";
  }
}

TEST(SeededResolveTest, SeedsImproveRecallOfRemainingPairs) {
  SeedWorld w = MakeSeedWorld();
  std::vector<Comparison> seeds;
  for (const SameAsLink& link : w.collection->same_as_links()) {
    seeds.emplace_back(link.a, link.b);
  }
  ProgressiveOptions opts;
  opts.matcher.threshold = 0.3;
  opts.evidence.weight = 0.4;
  ProgressiveResolver resolver(*w.collection, *w.graph, *w.evaluator, opts);
  const ProgressiveResult cold = resolver.Resolve(w.candidates);
  const ProgressiveResult warm =
      resolver.ResolveWithSeeds(w.candidates, seeds);

  // Score both runs only on the non-seeded truth pairs.
  std::set<uint64_t> seed_keys;
  for (const Comparison& s : seeds) seed_keys.insert(PairKey(s.a, s.b));
  auto unseeded_correct = [&](const ResolutionRun& run) {
    uint64_t n = 0;
    std::set<uint64_t> seen;
    for (const MatchEvent& m : run.matches) {
      const uint64_t key = PairKey(m.a, m.b);
      if (seed_keys.count(key)) continue;
      if (w.truth->Matches(m.a, m.b) && seen.insert(key).second) ++n;
    }
    return n;
  };
  EXPECT_GE(unseeded_correct(warm.run), unseeded_correct(cold.run));
  EXPECT_GT(warm.discovered_pairs, 0u);
}

TEST(SeededResolveTest, PipelineFlagUsesSameAsLinks) {
  SeedWorld w = MakeSeedWorld();
  WorkflowOptions with;
  with.use_same_as_seeds = true;
  with.progressive.matcher.threshold = 0.3;
  WorkflowOptions without = with;
  without.use_same_as_seeds = false;
  auto r_with = MinoanEr(with).Run(*w.collection);
  auto r_without = MinoanEr(without).Run(*w.collection);
  ASSERT_TRUE(r_with.ok());
  ASSERT_TRUE(r_without.ok());
  // With seeds, the update phase fires before matching: discovered pairs
  // must appear even at comparison 0.
  EXPECT_GT(r_with->progressive.discovered_pairs, 0u);
}

TEST(SeededResolveTest, EmptySeedListEqualsPlainResolve) {
  SeedWorld w = MakeSeedWorld();
  ProgressiveOptions opts;
  opts.matcher.budget = 200;
  ProgressiveResolver resolver(*w.collection, *w.graph, *w.evaluator, opts);
  const ProgressiveResult a = resolver.Resolve(w.candidates);
  const ProgressiveResult b = resolver.ResolveWithSeeds(w.candidates, {});
  ASSERT_EQ(a.run.matches.size(), b.run.matches.size());
  for (size_t i = 0; i < a.run.matches.size(); ++i) {
    EXPECT_EQ(PairKey(a.run.matches[i].a, a.run.matches[i].b),
              PairKey(b.run.matches[i].a, b.run.matches[i].b));
  }
}

// ---------------------------------------------------------------------------
// Cluster metrics on a real pipeline run
// ---------------------------------------------------------------------------

TEST(BCubedTest, PipelineRunScoresReasonably) {
  SeedWorld w = MakeSeedWorld();
  WorkflowOptions opts;
  opts.progressive.matcher.threshold = 0.35;
  auto report = MinoanEr(opts).Run(*w.collection);
  ASSERT_TRUE(report.ok());
  const ClusterMetrics m =
      EvaluateClusters(report->progressive.run, *w.truth);
  EXPECT_GT(m.bcubed_precision, 0.9);
  EXPECT_GT(m.bcubed_recall, 0.3);
  EXPECT_GT(m.clusters, 0u);
  EXPECT_LE(m.bcubed_f1, 1.0);
}

}  // namespace
}  // namespace minoan
