// Tests for util/flat_table.h: FlatPairMap / FlatPairSet parity against the
// std containers they replaced, across randomized insert/find/erase/clear
// workloads that cross multiple rehash boundaries, plus targeted checks of
// the backward-shift erase (the one operation with real room for subtle
// probe-chain bugs).

#include <algorithm>
#include <cstdint>
#include <random>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "util/flat_table.h"
#include "util/hash.h"

namespace minoan {
namespace {

TEST(FlatPairMapTest, EmptyLookups) {
  FlatPairMap<double> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.Find(7), nullptr);
  EXPECT_FALSE(map.Contains(7));
  EXPECT_FALSE(map.Erase(7));
  map.Clear();  // clearing an empty table is a no-op, not a crash
  EXPECT_TRUE(map.empty());
}

TEST(FlatPairMapTest, InsertFindEraseBasics) {
  FlatPairMap<double> map;
  bool created = false;
  map.FindOrInsert(10, &created) = 1.5;
  EXPECT_TRUE(created);
  map.FindOrInsert(10, &created) = 2.5;
  EXPECT_FALSE(created);
  EXPECT_EQ(map.size(), 1u);
  ASSERT_NE(map.Find(10), nullptr);
  EXPECT_EQ(*map.Find(10), 2.5);

  map.InsertOrAssign(11, 3.0);
  map.InsertOrAssign(11, 4.0);  // overwrite
  EXPECT_EQ(*map.Find(11), 4.0);
  EXPECT_EQ(map.size(), 2u);

  EXPECT_TRUE(map.Erase(10));
  EXPECT_FALSE(map.Erase(10));
  EXPECT_EQ(map.Find(10), nullptr);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatPairMapTest, FindOrInsertValueInitializes) {
  // The resolver's first-sighting logic relies on operator[]-style zero
  // initialization: a fresh entry must read as exactly 0.0.
  FlatPairMap<double> map;
  double& v = map.FindOrInsert(42);
  EXPECT_EQ(v, 0.0);
  v = 7.0;
  EXPECT_EQ(map.FindOrInsert(42), 7.0);
}

TEST(FlatPairMapTest, ReserveAvoidsRehash) {
  FlatPairMap<uint64_t> map;
  map.Reserve(1000);
  const size_t capacity = map.capacity();
  EXPECT_GE(capacity * 7, 1000u * 10);  // 1000 entries fit under 0.7 load
  for (uint64_t k = 0; k < 1000; ++k) map.InsertOrAssign(k, k * 3);
  EXPECT_EQ(map.capacity(), capacity);  // no growth mid-fill
  for (uint64_t k = 0; k < 1000; ++k) {
    ASSERT_NE(map.Find(k), nullptr);
    EXPECT_EQ(*map.Find(k), k * 3);
  }
}

TEST(FlatPairMapTest, ClearRetainsCapacityAndForgetsEntries) {
  FlatPairMap<uint32_t> map;
  for (uint64_t k = 0; k < 200; ++k) map.InsertOrAssign(k, 1);
  const size_t capacity = map.capacity();
  map.Clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.capacity(), capacity);
  for (uint64_t k = 0; k < 200; ++k) EXPECT_EQ(map.Find(k), nullptr);
  map.InsertOrAssign(5, 9);
  EXPECT_EQ(*map.Find(5), 9u);
}

// The load-bearing test: a long randomized workload where every operation
// is mirrored into std::unordered_map and full contents are compared at
// checkpoints. Keys are drawn from a small universe so erase hits often and
// collision runs form; the table grows through several rehashes.
TEST(FlatPairMapTest, RandomizedParityWithUnorderedMap) {
  std::mt19937_64 rng(0xF1A7F1A7u);
  FlatPairMap<uint64_t> flat;
  std::unordered_map<uint64_t, uint64_t> ref;
  std::uniform_int_distribution<uint64_t> key_dist(0, 4095);
  std::uniform_int_distribution<int> op_dist(0, 99);

  const auto expect_equal = [&] {
    ASSERT_EQ(flat.size(), ref.size());
    std::vector<std::pair<uint64_t, uint64_t>> got;
    got.reserve(flat.size());
    flat.ForEach([&got](uint64_t k, const uint64_t& v) {
      got.emplace_back(k, v);
    });
    std::sort(got.begin(), got.end());
    std::vector<std::pair<uint64_t, uint64_t>> want(ref.begin(), ref.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want);
  };

  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 20000; ++i) {
      const uint64_t key = key_dist(rng);
      const int op = op_dist(rng);
      if (op < 45) {  // insert-or-assign
        const uint64_t value = rng();
        flat.InsertOrAssign(key, value);
        ref[key] = value;
      } else if (op < 70) {  // find-or-insert, then mutate through the ref
        bool created = false;
        uint64_t& fv = flat.FindOrInsert(key, &created);
        const auto [it, inserted] = ref.try_emplace(key, 0);
        ASSERT_EQ(created, inserted) << "key " << key;
        fv += key + 1;
        it->second += key + 1;
      } else if (op < 95) {  // erase
        ASSERT_EQ(flat.Erase(key), ref.erase(key) > 0) << "key " << key;
      } else {  // point lookup
        const uint64_t* fv = flat.Find(key);
        const auto it = ref.find(key);
        ASSERT_EQ(fv != nullptr, it != ref.end()) << "key " << key;
        if (fv != nullptr) EXPECT_EQ(*fv, it->second);
      }
    }
    expect_equal();
    if (round == 1) {
      flat.Clear();
      ref.clear();
    }
  }
}

// Erase keys in a cluster that collides into one probe run, in every order,
// verifying the backward shift never strands a key behind an empty slot.
TEST(FlatPairMapTest, BackwardShiftEraseKeepsRunsReachable) {
  // Find keys that share a home slot at capacity 16.
  std::vector<uint64_t> colliders;
  for (uint64_t k = 0; colliders.size() < 5 && k < 1'000'000; ++k) {
    if ((Mix64(k) & 15) == 3) colliders.push_back(k);
  }
  ASSERT_EQ(colliders.size(), 5u);
  std::vector<size_t> order{0, 1, 2, 3, 4};
  do {
    FlatPairMap<uint64_t> map;  // capacity starts at 16, 5 entries fit
    for (const uint64_t k : colliders) map.InsertOrAssign(k, k + 1);
    ASSERT_EQ(map.capacity(), 16u);
    std::vector<bool> erased(colliders.size(), false);
    for (const size_t idx : order) {
      EXPECT_TRUE(map.Erase(colliders[idx]));
      erased[idx] = true;
      for (size_t i = 0; i < colliders.size(); ++i) {
        const uint64_t* v = map.Find(colliders[i]);
        if (erased[i]) {
          EXPECT_EQ(v, nullptr);
        } else {
          ASSERT_NE(v, nullptr) << "stranded key after erase";
          EXPECT_EQ(*v, colliders[i] + 1);
        }
      }
    }
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST(FlatPairSetTest, RandomizedParityWithUnorderedSet) {
  std::mt19937_64 rng(0x5E75E75Eu);
  FlatPairSet flat;
  std::unordered_set<uint64_t> ref;
  std::uniform_int_distribution<uint64_t> key_dist(0, 2047);
  std::uniform_int_distribution<int> op_dist(0, 99);

  for (int i = 0; i < 60000; ++i) {
    const uint64_t key = key_dist(rng);
    const int op = op_dist(rng);
    if (op < 55) {
      ASSERT_EQ(flat.Insert(key), ref.insert(key).second) << "key " << key;
    } else if (op < 85) {
      ASSERT_EQ(flat.Erase(key), ref.erase(key) > 0) << "key " << key;
    } else {
      ASSERT_EQ(flat.Contains(key), ref.count(key) > 0) << "key " << key;
    }
  }
  ASSERT_EQ(flat.size(), ref.size());
  std::vector<uint64_t> got;
  got.reserve(flat.size());
  flat.ForEach([&got](uint64_t k) { got.push_back(k); });
  std::sort(got.begin(), got.end());
  std::vector<uint64_t> want(ref.begin(), ref.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

TEST(FlatPairSetTest, InsertEraseBasics) {
  FlatPairSet set;
  EXPECT_FALSE(set.Contains(1));
  EXPECT_TRUE(set.Insert(1));
  EXPECT_FALSE(set.Insert(1));
  EXPECT_TRUE(set.Contains(1));
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.Erase(1));
  EXPECT_FALSE(set.Erase(1));
  EXPECT_TRUE(set.empty());
  set.Reserve(500);
  const size_t capacity = set.capacity();
  for (uint64_t k = 0; k < 500; ++k) set.Insert(k);
  EXPECT_EQ(set.capacity(), capacity);
  set.Clear();
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.Contains(123));
}

// PairKey packs two dense u32 entity ids, so the all-ones sentinel can
// never be produced by a valid pair — the premise of the reserved key.
TEST(FlatPairTableTest, SentinelIsNoValidPairKey) {
  const uint64_t max_valid =
      PairKey(0xFFFFFFFEu, 0xFFFFFFFFu);  // largest packable pair
  EXPECT_NE(max_valid, FlatPairSet::kEmptyKey);
  EXPECT_NE(PairKey(0, 0), FlatPairSet::kEmptyKey);
}

}  // namespace
}  // namespace minoan
