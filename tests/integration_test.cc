// Integration tests: the full MinoanEr pipeline (Figure 1) over generated
// LOD clouds, exercising blocking -> cleaning -> meta-blocking ->
// progressive resolution end to end, plus file-based ingestion.

#include <filesystem>

#include "core/minoan_er.h"
#include "datagen/lod_generator.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "eval/progressive_metrics.h"
#include "gtest/gtest.h"
#include "rdf/ntriples.h"

namespace minoan {
namespace {

datagen::LodCloudConfig MediumConfig(uint64_t seed) {
  datagen::LodCloudConfig cfg;
  cfg.seed = seed;
  cfg.num_real_entities = 400;
  cfg.num_kbs = 5;
  cfg.center_kbs = 2;
  return cfg;
}

struct World {
  std::unique_ptr<EntityCollection> collection;
  std::unique_ptr<GroundTruth> truth;

  static World Make(const datagen::LodCloudConfig& cfg) {
    auto cloud = datagen::GenerateLodCloud(cfg);
    EXPECT_TRUE(cloud.ok());
    auto collection = cloud->BuildCollection();
    EXPECT_TRUE(collection.ok());
    auto col = std::make_unique<EntityCollection>(
        std::move(collection).value());
    auto truth = GroundTruth::FromCloud(*cloud, *col);
    EXPECT_TRUE(truth.ok());
    return World{std::move(col), std::make_unique<GroundTruth>(
                                     std::move(truth).value())};
  }
};

TEST(PipelineTest, RunsEndToEndWithDefaults) {
  World w = World::Make(MediumConfig(201));
  MinoanEr er;
  auto report = er.Run(*w.collection);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->blocks_built, 0u);
  EXPECT_GT(report->blocks_after_cleaning, 0u);
  EXPECT_GT(report->comparisons_after_meta, 0u);
  EXPECT_GT(report->progressive.run.matches.size(), 0u);
  EXPECT_FALSE(report->Summary().empty());
  EXPECT_EQ(report->phases.size(), 5u);
}

TEST(PipelineTest, RejectsUnfinalizedCollection) {
  EntityCollection unfinalized;
  MinoanEr er;
  auto report = er.Run(unfinalized);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PipelineTest, AchievesGoodQualityOnCenterHeavyCloud) {
  datagen::LodCloudConfig cfg = MediumConfig(203);
  cfg.center_kbs = 4;
  World w = World::Make(cfg);
  WorkflowOptions opts;
  opts.progressive.matcher.threshold = 0.4;
  MinoanEr er(opts);
  auto report = er.Run(*w.collection);
  ASSERT_TRUE(report.ok());
  const MatchingMetrics m =
      EvaluateMatches(report->progressive.run.matches, *w.truth);
  EXPECT_GT(m.recall, 0.6) << "highly similar data should mostly resolve";
  EXPECT_GT(m.precision, 0.8);
}

TEST(PipelineTest, UpdatePhaseLiftsPeripheryRecall) {
  datagen::LodCloudConfig cfg = MediumConfig(207);
  cfg.center_kbs = 1;
  cfg.periphery_token_overlap = 0.2;
  World w = World::Make(cfg);

  WorkflowOptions on;
  on.progressive.matcher.threshold = 0.3;
  on.progressive.enable_update_phase = true;
  WorkflowOptions off = on;
  off.progressive.enable_update_phase = false;

  auto r_on = MinoanEr(on).Run(*w.collection);
  auto r_off = MinoanEr(off).Run(*w.collection);
  ASSERT_TRUE(r_on.ok());
  ASSERT_TRUE(r_off.ok());
  const MatchingMetrics m_on =
      EvaluateMatches(r_on->progressive.run.matches, *w.truth);
  const MatchingMetrics m_off =
      EvaluateMatches(r_off->progressive.run.matches, *w.truth);
  EXPECT_GT(m_on.recall, m_off.recall)
      << "neighbor evidence must recover blocking-missed matches";
  EXPECT_GT(r_on->progressive.discovered_pairs, 0u);
}

TEST(PipelineTest, BudgetLimitsWork) {
  World w = World::Make(MediumConfig(211));
  WorkflowOptions opts;
  opts.progressive.matcher.budget = 50;
  MinoanEr er(opts);
  auto report = er.Run(*w.collection);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->progressive.run.comparisons_executed, 50u);
}

TEST(PipelineTest, MetaBlockingReducesComparisons) {
  World w = World::Make(MediumConfig(213));
  WorkflowOptions with;
  WorkflowOptions without;
  without.enable_meta_blocking = false;
  auto r_with = MinoanEr(with).Run(*w.collection);
  auto r_without = MinoanEr(without).Run(*w.collection);
  ASSERT_TRUE(r_with.ok());
  ASSERT_TRUE(r_without.ok());
  EXPECT_LT(r_with->comparisons_after_meta,
            r_without->comparisons_after_meta);
}

TEST(PipelineTest, DeterministicReports) {
  World w = World::Make(MediumConfig(217));
  MinoanEr er;
  auto a = er.Run(*w.collection);
  auto b = er.Run(*w.collection);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->blocks_built, b->blocks_built);
  EXPECT_EQ(a->comparisons_after_meta, b->comparisons_after_meta);
  ASSERT_EQ(a->progressive.run.matches.size(),
            b->progressive.run.matches.size());
}

TEST(PipelineTest, AllBlockerChoicesRun) {
  World w = World::Make(MediumConfig(219));
  for (BlockerChoice choice :
       {BlockerChoice::kToken, BlockerChoice::kPis,
        BlockerChoice::kAttributeClustering, BlockerChoice::kTokenPlusPis}) {
    WorkflowOptions opts;
    opts.blocker = choice;
    MinoanEr er(opts);
    auto report = er.Run(*w.collection);
    ASSERT_TRUE(report.ok()) << BlockerChoiceName(choice);
    EXPECT_GT(report->blocks_built, 0u) << BlockerChoiceName(choice);
  }
}

TEST(PipelineTest, FileBasedRoundTrip) {
  // Generate -> write N-Triples -> re-ingest from disk -> resolve.
  const std::string dir = ::testing::TempDir() + "/pipeline_cloud";
  std::filesystem::remove_all(dir);
  auto cloud = datagen::GenerateLodCloud(MediumConfig(223));
  ASSERT_TRUE(cloud.ok());
  ASSERT_TRUE(cloud->WriteTo(dir).ok());

  rdf::NTriplesParser parser;
  EntityCollection collection;
  for (const auto& kb : cloud->kbs) {
    auto triples = parser.ParseFile(dir + "/" + kb.name + ".nt");
    ASSERT_TRUE(triples.ok());
    ASSERT_TRUE(collection.AddKnowledgeBase(kb.name, *triples).ok());
  }
  ASSERT_TRUE(collection.Finalize().ok());
  auto truth = GroundTruth::FromTsv(dir + "/ground_truth.tsv", collection);
  ASSERT_TRUE(truth.ok());

  MinoanEr er;
  auto report = er.Run(collection);
  ASSERT_TRUE(report.ok());
  const MatchingMetrics m =
      EvaluateMatches(report->progressive.run.matches, *truth);
  EXPECT_GT(m.recall, 0.3);
  EXPECT_GT(m.precision, 0.6);
}

TEST(PipelineTest, BenefitModelsAllProduceProgress) {
  World w = World::Make(MediumConfig(227));
  NeighborGraph graph(*w.collection);
  for (uint32_t model = 0; model < kNumBenefitModels; ++model) {
    WorkflowOptions opts;
    opts.progressive.benefit = static_cast<BenefitModel>(model);
    opts.progressive.matcher.budget = 2000;
    MinoanEr er(opts);
    auto report = er.Run(*w.collection);
    ASSERT_TRUE(report.ok());
    const QualityAspects q = EvaluateQualityAspects(
        report->progressive.run, *w.truth, *w.collection, graph);
    EXPECT_GT(q.entity_coverage, 0.0)
        << BenefitModelName(opts.progressive.benefit);
  }
}

}  // namespace
}  // namespace minoan
