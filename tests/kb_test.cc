// Unit tests for the kb module: entity-collection ingestion, neighbor graph,
// and cloud statistics.

#include <algorithm>

#include "gtest/gtest.h"
#include "kb/collection.h"
#include "kb/neighbor_graph.h"
#include "kb/stats.h"
#include "rdf/ntriples.h"

namespace minoan {
namespace {

using rdf::NTriplesParser;
using rdf::Triple;

std::vector<Triple> Parse(const std::string& doc) {
  NTriplesParser parser;
  auto result = parser.ParseString(doc);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

constexpr const char* kKbA = R"(
<http://a.org/r/crete> <http://a.org/v/name> "Crete Island" .
<http://a.org/r/crete> <http://a.org/v/capital> <http://a.org/r/heraklion> .
<http://a.org/r/heraklion> <http://a.org/v/name> "Heraklion" .
<http://a.org/r/heraklion> <http://a.org/v/founded> "0824"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://a.org/r/heraklion> <http://www.w3.org/2002/07/owl#sameAs> <http://b.org/place/heraklion> .
<http://a.org/r/crete> <http://a.org/v/sea> <http://external.org/mediterranean> .
)";

constexpr const char* kKbB = R"(
<http://b.org/place/heraklion> <http://b.org/p/label> "Heraklion city" .
<http://b.org/place/knossos> <http://b.org/p/label> "Knossos palace" .
<http://b.org/place/heraklion> <http://b.org/p/near> <http://b.org/place/knossos> .
)";

EntityCollection BuildTwoKbs(CollectionOptions opts = {}) {
  EntityCollection c(opts);
  EXPECT_TRUE(c.AddKnowledgeBase("kbA", Parse(kKbA)).ok());
  EXPECT_TRUE(c.AddKnowledgeBase("kbB", Parse(kKbB)).ok());
  EXPECT_TRUE(c.Finalize().ok());
  return c;
}

// ---------------------------------------------------------------------------
// Ingestion basics
// ---------------------------------------------------------------------------

TEST(CollectionTest, EntitiesPerKb) {
  EntityCollection c = BuildTwoKbs();
  EXPECT_EQ(c.num_kbs(), 2u);
  EXPECT_EQ(c.kb(0).num_entities(), 2u);  // crete, heraklion
  EXPECT_EQ(c.kb(1).num_entities(), 2u);  // heraklion, knossos
  EXPECT_EQ(c.num_entities(), 4u);
  EXPECT_EQ(c.kb(0).name, "kbA");
}

TEST(CollectionTest, FindByIri) {
  EntityCollection c = BuildTwoKbs();
  const EntityId crete = c.FindByIri("http://a.org/r/crete");
  ASSERT_NE(crete, kInvalidEntity);
  EXPECT_EQ(c.EntityIri(crete), "http://a.org/r/crete");
  EXPECT_EQ(c.FindByIri("http://nowhere.org/x"), kInvalidEntity);
}

TEST(CollectionTest, IntraKbObjectBecomesRelation) {
  EntityCollection c = BuildTwoKbs();
  const EntityId crete = c.FindByIri("http://a.org/r/crete");
  const EntityId heraklion = c.FindByIri("http://a.org/r/heraklion");
  bool found = false;
  for (const Relation& r : c.entity(crete).relations) {
    if (r.target == heraklion) found = true;
  }
  EXPECT_TRUE(found) << "capital edge should be a relation";
}

TEST(CollectionTest, ExternalIriBecomesAttribute) {
  EntityCollection c = BuildTwoKbs();
  const EntityId crete = c.FindByIri("http://a.org/r/crete");
  // <http://external.org/mediterranean> is undescribed: its local name must
  // appear among crete's tokens.
  const uint32_t tok = c.tokens().Find("mediterranean");
  ASSERT_NE(tok, kInternNotFound);
  const auto& tokens = c.entity(crete).tokens;
  EXPECT_TRUE(std::binary_search(tokens.begin(), tokens.end(), tok));
}

TEST(CollectionTest, SameAsCapturedNotRelation) {
  EntityCollection c = BuildTwoKbs();
  ASSERT_EQ(c.same_as_links().size(), 1u);
  const SameAsLink link = c.same_as_links()[0];
  EXPECT_EQ(c.EntityIri(link.a), "http://a.org/r/heraklion");
  EXPECT_EQ(c.EntityIri(link.b), "http://b.org/place/heraklion");
  // And it must NOT appear as a relation edge.
  for (const Relation& r : c.entity(link.a).relations) {
    EXPECT_NE(r.target, link.b);
  }
}

TEST(CollectionTest, UnresolvableSameAsDropped) {
  EntityCollection c;
  ASSERT_TRUE(c.AddKnowledgeBase("kbA", Parse(kKbA)).ok());
  // kbB never added: the sameAs target stays unresolved.
  ASSERT_TRUE(c.Finalize().ok());
  EXPECT_TRUE(c.same_as_links().empty());
}

TEST(CollectionTest, IriSuffixTokensIndexed) {
  EntityCollection c = BuildTwoKbs();
  const EntityId knossos = c.FindByIri("http://b.org/place/knossos");
  const uint32_t tok = c.tokens().Find("knossos");
  ASSERT_NE(tok, kInternNotFound);
  const auto& tokens = c.entity(knossos).tokens;
  EXPECT_TRUE(std::binary_search(tokens.begin(), tokens.end(), tok));
}

TEST(CollectionTest, TokensSortedUnique) {
  EntityCollection c = BuildTwoKbs();
  for (const EntityDescription& e : c.entities()) {
    EXPECT_TRUE(std::is_sorted(e.tokens.begin(), e.tokens.end()));
    EXPECT_EQ(std::adjacent_find(e.tokens.begin(), e.tokens.end()),
              e.tokens.end());
    EXPECT_TRUE(std::is_sorted(e.token_bag.begin(), e.token_bag.end()));
    EXPECT_GE(e.token_bag.size(), e.tokens.size());
  }
}

TEST(CollectionTest, DocumentFrequencies) {
  EntityCollection c = BuildTwoKbs();
  const uint32_t heraklion = c.tokens().Find("heraklion");
  ASSERT_NE(heraklion, kInternNotFound);
  // kbA:heraklion (name + IRI) and kbB:heraklion (label + IRI) -> df = 2.
  EXPECT_EQ(c.TokenDf(heraklion), 2u);
  EXPECT_GT(c.TokenIdf(heraklion), 0.0);
}

TEST(CollectionTest, StopTokenRemoval) {
  CollectionOptions opts;
  opts.max_token_frequency = 0.4;  // tokens in >40% of 4 entities dropped
  EntityCollection c = BuildTwoKbs(opts);
  // "heraklion" appears in 2/4 entities = 50% > 40% -> dropped everywhere.
  const uint32_t tok = c.tokens().Find("heraklion");
  ASSERT_NE(tok, kInternNotFound);
  for (const EntityDescription& e : c.entities()) {
    EXPECT_FALSE(std::binary_search(e.tokens.begin(), e.tokens.end(), tok));
  }
}

TEST(CollectionTest, AddAfterFinalizeFails) {
  EntityCollection c = BuildTwoKbs();
  auto result = c.AddKnowledgeBase("late", Parse(kKbB));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CollectionTest, DoubleFinalizeFails) {
  EntityCollection c = BuildTwoKbs();
  EXPECT_FALSE(c.Finalize().ok());
}

TEST(CollectionTest, BlankNodesScopedPerKb) {
  const char* doc = R"(
_:n <http://x/p> "left" .
)";
  EntityCollection c;
  ASSERT_TRUE(c.AddKnowledgeBase("k1", Parse(doc)).ok());
  ASSERT_TRUE(c.AddKnowledgeBase("k2", Parse(doc)).ok());
  ASSERT_TRUE(c.Finalize().ok());
  // Same label "_:n" in two KBs -> two distinct entities.
  EXPECT_EQ(c.num_entities(), 2u);
  EXPECT_NE(c.entity(0).iri, c.entity(1).iri);
}

TEST(CollectionTest, CrossKbPredicate) {
  EntityCollection c = BuildTwoKbs();
  const EntityId a = c.FindByIri("http://a.org/r/crete");
  const EntityId b = c.FindByIri("http://b.org/place/knossos");
  const EntityId a2 = c.FindByIri("http://a.org/r/heraklion");
  EXPECT_TRUE(c.CrossKb(a, b));
  EXPECT_FALSE(c.CrossKb(a, a2));
}

TEST(CollectionTest, TypeIndexingToggle) {
  const char* doc = R"(
<http://x/e> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/class/artifact> .
<http://x/e> <http://x/p> "payload" .
)";
  CollectionOptions with_types;
  EntityCollection c1(with_types);
  ASSERT_TRUE(c1.AddKnowledgeBase("k", Parse(doc)).ok());
  ASSERT_TRUE(c1.Finalize().ok());
  EXPECT_NE(c1.tokens().Find("artifact"), kInternNotFound);

  CollectionOptions no_types;
  no_types.index_types = false;
  EntityCollection c2(no_types);
  ASSERT_TRUE(c2.AddKnowledgeBase("k", Parse(doc)).ok());
  ASSERT_TRUE(c2.Finalize().ok());
  EXPECT_EQ(c2.tokens().Find("artifact"), kInternNotFound);
}

// ---------------------------------------------------------------------------
// NeighborGraph
// ---------------------------------------------------------------------------

TEST(NeighborGraphTest, UndirectedFromCollection) {
  EntityCollection c = BuildTwoKbs();
  NeighborGraph graph(c);
  const EntityId crete = c.FindByIri("http://a.org/r/crete");
  const EntityId heraklion = c.FindByIri("http://a.org/r/heraklion");
  EXPECT_TRUE(graph.AreNeighbors(crete, heraklion));
  EXPECT_TRUE(graph.AreNeighbors(heraklion, crete));  // symmetrized
}

TEST(NeighborGraphTest, ExplicitEdges) {
  NeighborGraph graph(5, {{0, 1}, {1, 2}, {0, 1}, {3, 3}});
  EXPECT_EQ(graph.num_edges(), 2u);  // dup removed, self-loop removed
  EXPECT_TRUE(graph.AreNeighbors(0, 1));
  EXPECT_TRUE(graph.AreNeighbors(2, 1));
  EXPECT_FALSE(graph.AreNeighbors(0, 2));
  EXPECT_EQ(graph.Degree(1), 2u);
  EXPECT_EQ(graph.Degree(4), 0u);
}

TEST(NeighborGraphTest, NeighborsSorted) {
  NeighborGraph graph(6, {{3, 5}, {3, 1}, {3, 4}});
  auto n = graph.Neighbors(3);
  EXPECT_TRUE(std::is_sorted(n.begin(), n.end()));
  EXPECT_EQ(n.size(), 3u);
}

TEST(NeighborGraphTest, MeanDegree) {
  NeighborGraph graph(4, {{0, 1}, {2, 3}});
  EXPECT_DOUBLE_EQ(graph.MeanDegree(), 1.0);
}

TEST(NeighborGraphTest, EmptyGraph) {
  NeighborGraph graph(3, {});
  EXPECT_EQ(graph.num_edges(), 0u);
  EXPECT_TRUE(graph.Neighbors(0).empty());
  EXPECT_DOUBLE_EQ(graph.MeanDegree(), 0.0);
}

// ---------------------------------------------------------------------------
// Cloud statistics
// ---------------------------------------------------------------------------

TEST(StatsTest, GiniCoefficientKnownValues) {
  EXPECT_NEAR(GiniCoefficient({1, 1, 1, 1}), 0.0, 1e-12);
  EXPECT_NEAR(GiniCoefficient({0, 0, 0, 100}), 0.75, 1e-12);
  EXPECT_DOUBLE_EQ(GiniCoefficient({}), 0.0);
  EXPECT_DOUBLE_EQ(GiniCoefficient({0, 0}), 0.0);
}

TEST(StatsTest, CloudStatsBasics) {
  EntityCollection c = BuildTwoKbs();
  const CloudStats stats = ComputeCloudStats(c);
  EXPECT_EQ(stats.num_kbs, 2u);
  EXPECT_EQ(stats.num_entities, 4u);
  EXPECT_EQ(stats.num_same_as, 1u);
  ASSERT_EQ(stats.per_kb.size(), 2u);
  EXPECT_EQ(stats.per_kb[0].out_links, 1u);
  EXPECT_EQ(stats.per_kb[1].in_links, 1u);
  EXPECT_EQ(stats.per_kb[0].linked_kbs, 1u);
}

TEST(StatsTest, ProprietaryVocabularies) {
  EntityCollection c = BuildTwoKbs();
  const CloudStats stats = ComputeCloudStats(c);
  // http://a.org/v/ used only by kbA, http://b.org/p/ only by kbB: both
  // proprietary (owl# is consumed as sameAs, not an attribute namespace).
  EXPECT_EQ(stats.num_vocabularies, 2u);
  EXPECT_EQ(stats.proprietary_vocabularies, 2u);
  EXPECT_DOUBLE_EQ(stats.proprietary_ratio, 1.0);
}

TEST(StatsTest, SharedVocabularyNotProprietary) {
  const char* doc_a = R"(<http://a/e1> <http://common.org/v/name> "x" .)";
  const char* doc_b = R"(<http://b/e2> <http://common.org/v/name> "y" .)";
  EntityCollection c;
  ASSERT_TRUE(c.AddKnowledgeBase("a", Parse(doc_a)).ok());
  ASSERT_TRUE(c.AddKnowledgeBase("b", Parse(doc_b)).ok());
  ASSERT_TRUE(c.Finalize().ok());
  const CloudStats stats = ComputeCloudStats(c);
  EXPECT_EQ(stats.num_vocabularies, 1u);
  EXPECT_EQ(stats.proprietary_vocabularies, 0u);
}

}  // namespace
}  // namespace minoan
