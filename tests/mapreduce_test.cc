// Unit tests for the MapReduce substrate: engine semantics (word count,
// combiner, determinism across worker counts) and the parallel blocking /
// meta-blocking jobs, which must reproduce the sequential results exactly.

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <string>

#include "blocking/blocking_method.h"
#include "datagen/lod_generator.h"
#include "gtest/gtest.h"
#include "mapreduce/engine.h"
#include "mapreduce/parallel_blocking.h"
#include "mapreduce/parallel_meta_blocking.h"
#include "metablocking/meta_blocking.h"
#include "util/hash.h"

namespace minoan {
namespace {

using mapreduce::Counters;
using mapreduce::Emitter;
using mapreduce::Engine;

// ---------------------------------------------------------------------------
// Engine semantics
// ---------------------------------------------------------------------------

using WordCount = std::pair<std::string, uint64_t>;

std::vector<WordCount> RunWordCount(Engine& engine,
                                    const std::vector<std::string>& docs,
                                    bool with_combiner,
                                    Counters* counters = nullptr) {
  auto map_fn = [](const std::string& doc,
                   Emitter<std::string, uint64_t>& emitter) {
    size_t start = 0;
    while (start < doc.size()) {
      size_t end = doc.find(' ', start);
      if (end == std::string::npos) end = doc.size();
      if (end > start) emitter.Emit(doc.substr(start, end - start), 1);
      start = end + 1;
    }
  };
  auto reduce_fn = [](const std::string& word, std::span<const uint64_t> ones,
                      std::vector<WordCount>& out) {
    uint64_t total = 0;
    for (uint64_t v : ones) total += v;
    out.emplace_back(word, total);
  };
  std::function<uint64_t(const std::string&, std::span<const uint64_t>)>
      combine_fn = [](const std::string&, std::span<const uint64_t> ones) {
        uint64_t total = 0;
        for (uint64_t v : ones) total += v;
        return total;
      };
  auto result = engine.Run<std::string, std::string, uint64_t, WordCount>(
      docs, map_fn, reduce_fn, with_combiner ? &combine_fn : nullptr,
      counters);
  std::sort(result.begin(), result.end());
  return result;
}

const std::vector<std::string> kDocs = {
    "the palace of knossos", "the harbor", "knossos the palace",
    "minoan harbor the"};

const std::vector<WordCount> kExpected = {
    {"harbor", 2}, {"knossos", 2}, {"minoan", 1},
    {"of", 1},     {"palace", 2},  {"the", 4}};

TEST(EngineTest, WordCountSingleWorker) {
  Engine engine(1);
  EXPECT_EQ(RunWordCount(engine, kDocs, false), kExpected);
}

TEST(EngineTest, WordCountManyWorkers) {
  Engine engine(8);
  EXPECT_EQ(RunWordCount(engine, kDocs, false), kExpected);
}

TEST(EngineTest, SameResultAcrossWorkerCounts) {
  for (uint32_t workers : {1u, 2u, 3u, 5u, 16u}) {
    Engine engine(workers);
    EXPECT_EQ(RunWordCount(engine, kDocs, false), kExpected)
        << workers << " workers";
  }
}

TEST(EngineTest, CombinerPreservesResult) {
  Engine engine(4);
  Counters with, without;
  EXPECT_EQ(RunWordCount(engine, kDocs, true, &with), kExpected);
  EXPECT_EQ(RunWordCount(engine, kDocs, false, &without), kExpected);
  EXPECT_LE(with.combine_output_records, without.map_output_records);
}

TEST(EngineTest, CountersAccurate) {
  Engine engine(2);
  Counters counters;
  RunWordCount(engine, kDocs, false, &counters);
  EXPECT_EQ(counters.map_input_records, kDocs.size());
  EXPECT_EQ(counters.map_output_records, 12u);  // total words
  EXPECT_EQ(counters.reduce_groups, kExpected.size());
  EXPECT_EQ(counters.reduce_output_records, kExpected.size());
}

TEST(EngineTest, EmptyInput) {
  Engine engine(4);
  auto out = RunWordCount(engine, {}, false);
  EXPECT_TRUE(out.empty());
}

TEST(EngineTest, ZeroWorkersClampedToOne) {
  Engine engine(0);
  EXPECT_EQ(engine.num_workers(), 1u);
  EXPECT_EQ(RunWordCount(engine, kDocs, false), kExpected);
}

TEST(EngineTest, ValuesArriveSortedWithinKey) {
  // The engine sorts (K, V) pairs, so reducers see values ascending — the
  // property the deterministic WEP mean relies on.
  Engine engine(4);
  std::vector<int> inputs{5, 3, 9, 1, 7};
  auto map_fn = [](const int& v, Emitter<int, int>& emitter) {
    emitter.Emit(0, v);
  };
  std::vector<int> seen;
  auto reduce_fn = [&seen](const int&, std::span<const int> values,
                           std::vector<int>& out) {
    seen.assign(values.begin(), values.end());
    out.push_back(0);
  };
  engine.Run<int, int, int, int>(inputs, map_fn, reduce_fn);
  EXPECT_EQ(seen, (std::vector<int>{1, 3, 5, 7, 9}));
}

// ---------------------------------------------------------------------------
// Parallel token blocking == sequential token blocking
// ---------------------------------------------------------------------------

class ParallelJobsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::LodCloudConfig cfg;
    cfg.seed = 53;
    cfg.num_real_entities = 300;
    cfg.num_kbs = 4;
    cfg.center_kbs = 2;
    auto cloud = datagen::GenerateLodCloud(cfg);
    ASSERT_TRUE(cloud.ok());
    auto collection = cloud->BuildCollection();
    ASSERT_TRUE(collection.ok());
    collection_ = new EntityCollection(std::move(collection).value());
  }
  static void TearDownTestSuite() {
    delete collection_;
    collection_ = nullptr;
  }
  static EntityCollection* collection_;
};

EntityCollection* ParallelJobsTest::collection_ = nullptr;

/// Canonical form of a block collection for equality checks.
std::map<std::string, std::vector<EntityId>> Canonical(
    const BlockCollection& blocks) {
  std::map<std::string, std::vector<EntityId>> out;
  for (const Block& b : blocks.blocks()) {
    out[std::string(blocks.KeyString(b.key))] = b.entities;
  }
  return out;
}

TEST_F(ParallelJobsTest, TokenBlockingMatchesSequential) {
  const BlockCollection sequential = TokenBlocking().Build(*collection_);
  for (uint32_t workers : {1u, 4u, 16u}) {
    Engine engine(workers);
    const BlockCollection parallel =
        mapreduce::ParallelTokenBlocking(*collection_, engine);
    EXPECT_EQ(Canonical(parallel), Canonical(sequential))
        << workers << " workers";
  }
}

TEST_F(ParallelJobsTest, TokenBlockingCountersFilled) {
  Engine engine(4);
  Counters counters;
  mapreduce::ParallelTokenBlocking(*collection_, engine, {}, &counters);
  EXPECT_EQ(counters.map_input_records, collection_->num_entities());
  EXPECT_GT(counters.map_output_records, 0u);
  EXPECT_GT(counters.reduce_groups, 0u);
}

// ---------------------------------------------------------------------------
// Parallel meta-blocking == sequential meta-blocking (full scheme grid)
// ---------------------------------------------------------------------------

struct MetaCase {
  WeightingScheme weighting;
  PruningScheme pruning;
  bool reciprocal;
};

std::string MetaCaseName(const ::testing::TestParamInfo<MetaCase>& info) {
  std::string name =
      std::string(WeightingSchemeName(info.param.weighting)) + "_" +
      std::string(PruningSchemeName(info.param.pruning));
  if (info.param.reciprocal) name += "_recip";
  return name;
}

class ParallelMetaGrid : public ::testing::TestWithParam<MetaCase> {
 protected:
  void SetUp() override {
    datagen::LodCloudConfig cfg;
    cfg.seed = 59;
    cfg.num_real_entities = 200;
    cfg.num_kbs = 3;
    cfg.center_kbs = 1;
    auto cloud = datagen::GenerateLodCloud(cfg);
    ASSERT_TRUE(cloud.ok());
    auto collection = cloud->BuildCollection();
    ASSERT_TRUE(collection.ok());
    collection_ = std::make_unique<EntityCollection>(
        std::move(collection).value());
    blocks_ = TokenBlocking().Build(*collection_);
  }

  std::unique_ptr<EntityCollection> collection_;
  BlockCollection blocks_;
};

std::set<std::pair<uint64_t, int64_t>> CanonicalEdges(
    const std::vector<WeightedComparison>& edges) {
  // Quantize weights so the comparison tolerates last-ulp FP reordering.
  std::set<std::pair<uint64_t, int64_t>> out;
  for (const auto& e : edges) {
    out.insert({PairKey(e.a, e.b),
                static_cast<int64_t>(std::llround(e.weight * 1e9))});
  }
  return out;
}

TEST_P(ParallelMetaGrid, MatchesSequential) {
  MetaBlockingOptions opts;
  opts.weighting = GetParam().weighting;
  opts.pruning = GetParam().pruning;
  opts.reciprocal = GetParam().reciprocal;

  const auto sequential = MetaBlocking(opts).Prune(blocks_, *collection_);
  for (uint32_t workers : {1u, 8u}) {
    Engine engine(workers);
    const auto parallel = mapreduce::ParallelMetaBlocking(
        blocks_, *collection_, opts, engine);
    EXPECT_EQ(CanonicalEdges(parallel), CanonicalEdges(sequential))
        << workers << " workers";
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchemeGrid, ParallelMetaGrid,
    ::testing::Values(
        MetaCase{WeightingScheme::kCbs, PruningScheme::kWep, false},
        MetaCase{WeightingScheme::kCbs, PruningScheme::kCep, false},
        MetaCase{WeightingScheme::kCbs, PruningScheme::kWnp, false},
        MetaCase{WeightingScheme::kCbs, PruningScheme::kWnp, true},
        MetaCase{WeightingScheme::kCbs, PruningScheme::kCnp, false},
        MetaCase{WeightingScheme::kEcbs, PruningScheme::kWep, false},
        MetaCase{WeightingScheme::kEcbs, PruningScheme::kWnp, false},
        MetaCase{WeightingScheme::kJs, PruningScheme::kWnp, false},
        MetaCase{WeightingScheme::kJs, PruningScheme::kCnp, true},
        MetaCase{WeightingScheme::kEjs, PruningScheme::kWnp, false},
        MetaCase{WeightingScheme::kArcs, PruningScheme::kWep, false},
        MetaCase{WeightingScheme::kArcs, PruningScheme::kCnp, false}),
    MetaCaseName);

TEST_F(ParallelJobsTest, MetaBlockingStatsFilled) {
  BlockCollection blocks = TokenBlocking().Build(*collection_);
  MetaBlockingOptions opts;
  Engine engine(4);
  mapreduce::ParallelMetaBlockingStats stats;
  const auto retained = mapreduce::ParallelMetaBlocking(
      blocks, *collection_, opts, engine, &stats);
  EXPECT_GT(retained.size(), 0u);
  EXPECT_EQ(stats.totals.retained_edges, retained.size());
  EXPECT_GT(stats.stage1.map_input_records, 0u);
  EXPECT_GT(stats.stage2.map_input_records, 0u);
}

}  // namespace
}  // namespace minoan
