// Unit tests for the matching module: similarity evaluator, union-find,
// batch matcher, and unique-mapping clustering.

#include <cmath>

#include "gtest/gtest.h"
#include "matching/matcher.h"
#include "matching/similarity_evaluator.h"
#include "matching/union_find.h"
#include "rdf/ntriples.h"

namespace minoan {
namespace {

std::vector<rdf::Triple> Parse(const std::string& doc) {
  rdf::NTriplesParser parser;
  auto result = parser.ParseString(doc);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

EntityCollection MatchingFixture() {
  EntityCollection c;
  EXPECT_TRUE(c.AddKnowledgeBase("a", Parse(R"(
<http://a/knossos> <http://a/p/name> "knossos minoan palace crete" .
<http://a/phaistos> <http://a/p/name> "phaistos minoan palace disc" .
<http://a/athens> <http://a/p/name> "athens acropolis parthenon greece" .
)")).ok());
  EXPECT_TRUE(c.AddKnowledgeBase("b", Parse(R"(
<http://b/e1> <http://b/p/label> "knossos minoan palace heraklion crete" .
<http://b/e2> <http://b/p/label> "athens acropolis hill" .
<http://b/e3> <http://b/p/label> "unrelated random tokens entirely" .
)")).ok());
  EXPECT_TRUE(c.Finalize().ok());
  return c;
}

// ---------------------------------------------------------------------------
// SimilarityEvaluator
// ---------------------------------------------------------------------------

TEST(SimilarityEvaluatorTest, MatchingPairScoresHigh) {
  EntityCollection c = MatchingFixture();
  SimilarityEvaluator eval(c);
  const EntityId ka = c.FindByIri("http://a/knossos");
  const EntityId kb = c.FindByIri("http://b/e1");
  const EntityId ua = c.FindByIri("http://b/e3");
  EXPECT_GT(eval.Similarity(ka, kb), 0.35);
  EXPECT_LT(eval.Similarity(ka, ua), 0.1);
}

TEST(SimilarityEvaluatorTest, SymmetricAndBounded) {
  EntityCollection c = MatchingFixture();
  SimilarityEvaluator eval(c);
  for (EntityId a = 0; a < c.num_entities(); ++a) {
    for (EntityId b = 0; b < c.num_entities(); ++b) {
      const double s = eval.Similarity(a, b);
      EXPECT_DOUBLE_EQ(s, eval.Similarity(b, a));
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0 + 1e-12);
    }
  }
}

TEST(SimilarityEvaluatorTest, SelfSimilarityIsMax) {
  EntityCollection c = MatchingFixture();
  SimilarityEvaluator eval(c);
  for (EntityId e = 0; e < c.num_entities(); ++e) {
    EXPECT_NEAR(eval.Similarity(e, e), 1.0, 1e-9);
  }
}

TEST(SimilarityEvaluatorTest, JaccardOnlyModeCheaper) {
  EntityCollection c = MatchingFixture();
  SimilarityOptions opts;
  opts.use_tfidf = false;
  SimilarityEvaluator eval(c, opts);
  const EntityId ka = c.FindByIri("http://a/knossos");
  const EntityId kb = c.FindByIri("http://b/e1");
  EXPECT_DOUBLE_EQ(eval.Similarity(ka, kb), eval.TokenJaccard(ka, kb));
  EXPECT_DOUBLE_EQ(eval.TfIdfCosine(ka, kb), 0.0);
}

TEST(SimilarityEvaluatorTest, TfIdfDiscountsCommonTokens) {
  // "minoan palace" appear in 2 of 3 KB-a entities; rare tokens should
  // dominate the TF-IDF component.
  EntityCollection c = MatchingFixture();
  SimilarityEvaluator eval(c);
  const EntityId knossos_a = c.FindByIri("http://a/knossos");
  const EntityId knossos_b = c.FindByIri("http://b/e1");
  const EntityId phaistos = c.FindByIri("http://a/phaistos");
  // knossos_a shares rare "knossos"+"crete" with knossos_b, but only the
  // frequent "minoan palace" with phaistos.
  EXPECT_GT(eval.TfIdfCosine(knossos_a, knossos_b),
            eval.TfIdfCosine(knossos_a, phaistos));
}

TEST(SimilarityEvaluatorTest, WeightInterpolation) {
  EntityCollection c = MatchingFixture();
  SimilarityOptions all_cosine;
  all_cosine.tfidf_weight = 1.0;
  SimilarityOptions all_jaccard;
  all_jaccard.tfidf_weight = 0.0;
  SimilarityEvaluator ec(c, all_cosine);
  SimilarityEvaluator ej(c, all_jaccard);
  const EntityId a = c.FindByIri("http://a/knossos");
  const EntityId b = c.FindByIri("http://b/e1");
  EXPECT_DOUBLE_EQ(ec.Similarity(a, b), ec.TfIdfCosine(a, b));
  EXPECT_DOUBLE_EQ(ej.Similarity(a, b), ej.TokenJaccard(a, b));
}

// ---------------------------------------------------------------------------
// UnionFind
// ---------------------------------------------------------------------------

TEST(UnionFindTest, BasicUnionAndFind) {
  UnionFind uf(5);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Union(1, 2));
  EXPECT_FALSE(uf.Union(0, 2));  // already same set
  EXPECT_TRUE(uf.SameSet(0, 2));
  EXPECT_FALSE(uf.SameSet(0, 3));
  EXPECT_EQ(uf.SetSize(1), 3u);
  EXPECT_EQ(uf.SetSize(4), 1u);
}

TEST(UnionFindTest, CountClusters) {
  UnionFind uf(6);
  uf.Union(0, 1);
  uf.Union(2, 3);
  EXPECT_EQ(uf.CountClusters(), 4u);       // {01}{23}{4}{5}
  EXPECT_EQ(uf.CountClusters(2), 2u);      // only the pairs
}

TEST(UnionFindTest, ClustersSortedAndFiltered) {
  UnionFind uf(6);
  uf.Union(4, 2);
  uf.Union(2, 0);
  const auto clusters = uf.Clusters(2);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0], (std::vector<uint32_t>{0, 2, 4}));
  const auto all = uf.Clusters(1);
  EXPECT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].front(), 0u);  // sorted by smallest member
}

TEST(UnionFindTest, LargeChainStaysConsistent) {
  const uint32_t n = 10000;
  UnionFind uf(n);
  for (uint32_t i = 1; i < n; ++i) uf.Union(i - 1, i);
  EXPECT_EQ(uf.SetSize(0), n);
  EXPECT_TRUE(uf.SameSet(0, n - 1));
  EXPECT_EQ(uf.CountClusters(), 1u);
}

// ---------------------------------------------------------------------------
// BatchMatcher
// ---------------------------------------------------------------------------

TEST(BatchMatcherTest, ThresholdSplitsMatches) {
  EntityCollection c = MatchingFixture();
  SimilarityEvaluator eval(c);
  MatcherOptions opts;
  opts.threshold = 0.3;
  BatchMatcher matcher(eval, opts);
  std::vector<Comparison> order;
  for (EntityId a = 0; a < 3; ++a) {
    for (EntityId b = 3; b < 6; ++b) order.emplace_back(a, b);
  }
  const ResolutionRun run = matcher.Run(order);
  EXPECT_EQ(run.comparisons_executed, 9u);
  // knossos and athens pairs should match; nothing should pair with e3.
  const EntityId e3 = c.FindByIri("http://b/e3");
  for (const MatchEvent& m : run.matches) {
    EXPECT_NE(m.a, e3);
    EXPECT_NE(m.b, e3);
    EXPECT_GE(m.similarity, 0.3);
  }
  EXPECT_GE(run.matches.size(), 2u);
}

TEST(BatchMatcherTest, BudgetCutsExecution) {
  EntityCollection c = MatchingFixture();
  SimilarityEvaluator eval(c);
  MatcherOptions opts;
  opts.threshold = 0.0;  // everything matches
  opts.budget = 4;
  BatchMatcher matcher(eval, opts);
  std::vector<Comparison> order;
  for (EntityId a = 0; a < 3; ++a) {
    for (EntityId b = 3; b < 6; ++b) order.emplace_back(a, b);
  }
  const ResolutionRun run = matcher.Run(order);
  EXPECT_EQ(run.comparisons_executed, 4u);
  EXPECT_EQ(run.matches.size(), 4u);
  // Match events are stamped with 1-based comparison counts.
  EXPECT_EQ(run.matches.front().comparisons_done, 1u);
  EXPECT_EQ(run.matches.back().comparisons_done, 4u);
}

TEST(BatchMatcherTest, ClosureMergesMatches) {
  ResolutionRun run;
  run.matches.push_back({1, 0, 3, 0.9});
  run.matches.push_back({2, 3, 5, 0.8});
  UnionFind closure = run.BuildClosure(6);
  EXPECT_TRUE(closure.SameSet(0, 5));
  EXPECT_FALSE(closure.SameSet(0, 1));
}

// ---------------------------------------------------------------------------
// UniqueMappingClustering
// ---------------------------------------------------------------------------

TEST(UniqueMappingTest, KeepsBestPerKbSlot) {
  EntityCollection c = MatchingFixture();
  // Entities 0..2 in KB a; 3..5 in KB b.
  std::vector<MatchEvent> matches = {
      {1, 0, 3, 0.9},  // best for 0
      {2, 0, 4, 0.7},  // 0 already mapped to KB b -> dropped
      {3, 1, 4, 0.6},  // kept
      {4, 2, 4, 0.5},  // 4 already mapped -> dropped
      {5, 2, 5, 0.4},  // kept
  };
  const auto kept = UniqueMappingClustering(matches, c);
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[0].similarity, 0.9);
  EXPECT_EQ(kept[1].similarity, 0.6);
  EXPECT_EQ(kept[2].similarity, 0.4);
}

TEST(UniqueMappingTest, SameKbPairsDropped) {
  EntityCollection c = MatchingFixture();
  std::vector<MatchEvent> matches = {{1, 0, 1, 0.99}};  // both KB a
  EXPECT_TRUE(UniqueMappingClustering(matches, c).empty());
}

TEST(UniqueMappingTest, OrderIndependentOfInput) {
  EntityCollection c = MatchingFixture();
  std::vector<MatchEvent> matches = {
      {1, 0, 4, 0.7}, {2, 0, 3, 0.9}, {3, 1, 4, 0.6}};
  std::vector<MatchEvent> reversed(matches.rbegin(), matches.rend());
  const auto a = UniqueMappingClustering(matches, c);
  const auto b = UniqueMappingClustering(reversed, c);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].similarity, b[i].similarity);
  }
}

}  // namespace
}  // namespace minoan
