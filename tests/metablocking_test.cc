// Unit tests for meta-blocking: hand-computed edge weights on a fixture,
// behavior of all pruning schemes, reciprocal variants, and recall retention
// on generated clouds (parameterized over the full scheme grid).

#include <algorithm>
#include <cmath>
#include <set>

#include "blocking/blocking_method.h"
#include "datagen/lod_generator.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "gtest/gtest.h"
#include "metablocking/blocking_graph.h"
#include "metablocking/meta_blocking.h"
#include "rdf/ntriples.h"
#include "util/hash.h"

namespace minoan {
namespace {

std::vector<rdf::Triple> Parse(const std::string& doc) {
  rdf::NTriplesParser parser;
  auto result = parser.ParseString(doc);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

/// Fixture with hand-checkable blocks. Entities: a0, a1 (KB a), b0, b1 (KB
/// b). Blocks: {a0,b0} x2 shared tokens, {a0,b0,b1}, {a1,b1}.
struct Fixture {
  EntityCollection collection;
  BlockCollection blocks;
  EntityId a0, a1, b0, b1;

  Fixture() {
    EXPECT_TRUE(collection.AddKnowledgeBase("a", Parse(R"(
<http://a/0> <http://a/p> "x" .
<http://a/1> <http://a/p> "y" .
)")).ok());
    EXPECT_TRUE(collection.AddKnowledgeBase("b", Parse(R"(
<http://b/0> <http://b/p> "x" .
<http://b/1> <http://b/p> "y" .
)")).ok());
    EXPECT_TRUE(collection.Finalize().ok());
    a0 = collection.FindByIri("http://a/0");
    a1 = collection.FindByIri("http://a/1");
    b0 = collection.FindByIri("http://b/0");
    b1 = collection.FindByIri("http://b/1");
    blocks.AddBlock("k1", {a0, b0});
    blocks.AddBlock("k2", {a0, b0});
    blocks.AddBlock("k3", {a0, b0, b1});
    blocks.AddBlock("k4", {a1, b1});
  }
};

// ---------------------------------------------------------------------------
// Edge weights (hand-computed)
// ---------------------------------------------------------------------------

TEST(WeightTest, CbsCountsCommonBlocks) {
  Fixture f;
  EXPECT_DOUBLE_EQ(
      ComputePairWeight(f.blocks, f.collection, WeightingScheme::kCbs,
                        ResolutionMode::kCleanClean, f.a0, f.b0),
      3.0);
  EXPECT_DOUBLE_EQ(
      ComputePairWeight(f.blocks, f.collection, WeightingScheme::kCbs,
                        ResolutionMode::kCleanClean, f.a0, f.b1),
      1.0);
  EXPECT_DOUBLE_EQ(
      ComputePairWeight(f.blocks, f.collection, WeightingScheme::kCbs,
                        ResolutionMode::kCleanClean, f.a1, f.b1),
      1.0);
}

TEST(WeightTest, AbsentEdgeIsZero) {
  Fixture f;
  EXPECT_DOUBLE_EQ(
      ComputePairWeight(f.blocks, f.collection, WeightingScheme::kCbs,
                        ResolutionMode::kCleanClean, f.a1, f.b0),
      0.0);
}

TEST(WeightTest, JsMatchesFormula) {
  Fixture f;
  // |B_a0| = 3, |B_b0| = 3, common = 3 -> JS = 3 / (3+3-3) = 1.
  EXPECT_DOUBLE_EQ(
      ComputePairWeight(f.blocks, f.collection, WeightingScheme::kJs,
                        ResolutionMode::kCleanClean, f.a0, f.b0),
      1.0);
  // a0-b1: |B_a0|=3, |B_b1|=2, common=1 -> 1/(3+2-1) = 0.25.
  EXPECT_DOUBLE_EQ(
      ComputePairWeight(f.blocks, f.collection, WeightingScheme::kJs,
                        ResolutionMode::kCleanClean, f.a0, f.b1),
      0.25);
}

TEST(WeightTest, EcbsMatchesFormula) {
  Fixture f;
  // |B| = 4; ECBS(a0,b0) = 3 * ln(4/3) * ln(4/3).
  const double expected = 3.0 * std::log(4.0 / 3.0) * std::log(4.0 / 3.0);
  EXPECT_NEAR(
      ComputePairWeight(f.blocks, f.collection, WeightingScheme::kEcbs,
                        ResolutionMode::kCleanClean, f.a0, f.b0),
      expected, 1e-12);
}

TEST(WeightTest, ArcsMatchesFormula) {
  Fixture f;
  // Clean-clean cardinalities: k1, k2 -> 1 comparison each; k3 -> {a0,b0},
  // {a0,b1} = 2 comparisons; ARCS(a0,b0) = 1/1 + 1/1 + 1/2 = 2.5.
  EXPECT_DOUBLE_EQ(
      ComputePairWeight(f.blocks, f.collection, WeightingScheme::kArcs,
                        ResolutionMode::kCleanClean, f.a0, f.b0),
      2.5);
  EXPECT_DOUBLE_EQ(
      ComputePairWeight(f.blocks, f.collection, WeightingScheme::kArcs,
                        ResolutionMode::kCleanClean, f.a0, f.b1),
      0.5);
}

TEST(WeightTest, EjsDiscountsHighDegreeNodes) {
  Fixture f;
  // deg(a0) = 2 (b0, b1), deg(b0) = 1, deg(b1) = 2, deg(a1) = 1; |V| = 4.
  const double js_a0b0 = 1.0;
  const double expected =
      js_a0b0 * std::log(4.0 / 2.0) * std::log(4.0 / 1.0);
  EXPECT_NEAR(
      ComputePairWeight(f.blocks, f.collection, WeightingScheme::kEjs,
                        ResolutionMode::kCleanClean, f.a0, f.b0),
      expected, 1e-12);
}

TEST(WeightTest, DirtyModeSeesSameKbEdges) {
  Fixture f;
  // In dirty mode b0-b1 co-occur in k3.
  EXPECT_DOUBLE_EQ(
      ComputePairWeight(f.blocks, f.collection, WeightingScheme::kCbs,
                        ResolutionMode::kDirty, f.b0, f.b1),
      1.0);
  // In clean-clean mode that edge does not exist.
  EXPECT_DOUBLE_EQ(
      ComputePairWeight(f.blocks, f.collection, WeightingScheme::kCbs,
                        ResolutionMode::kCleanClean, f.b0, f.b1),
      0.0);
}

// ---------------------------------------------------------------------------
// BlockingGraphView mechanics
// ---------------------------------------------------------------------------

TEST(GraphViewTest, OnlyGreaterEnumeratesEachEdgeOnce) {
  Fixture f;
  BlockingGraphView view(f.blocks, f.collection, WeightingScheme::kCbs,
                         ResolutionMode::kCleanClean);
  NeighborScratch scratch(f.collection.num_entities());
  std::multiset<uint64_t> edges;
  for (EntityId e = 0; e < f.collection.num_entities(); ++e) {
    view.ForNeighbors(scratch, e, /*only_greater=*/true,
                      [&](EntityId n, uint32_t, double) {
                        edges.insert(PairKey(e, n));
                      });
  }
  // Distinct edges: (a0,b0), (a0,b1), (a1,b1) — each exactly once.
  EXPECT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges.count(PairKey(f.a0, f.b0)), 1u);
}

TEST(GraphViewTest, BothDirectionsWithoutOnlyGreater) {
  Fixture f;
  BlockingGraphView view(f.blocks, f.collection, WeightingScheme::kCbs,
                         ResolutionMode::kCleanClean);
  NeighborScratch scratch(f.collection.num_entities());
  uint64_t half_edges = 0;
  for (EntityId e = 0; e < f.collection.num_entities(); ++e) {
    view.ForNeighbors(scratch, e, false,
                      [&](EntityId, uint32_t, double) { ++half_edges; });
  }
  EXPECT_EQ(half_edges, 6u);  // 3 edges seen from both sides
}

TEST(GraphViewTest, TotalBlockAssignments) {
  Fixture f;
  BlockingGraphView view(f.blocks, f.collection, WeightingScheme::kCbs,
                         ResolutionMode::kCleanClean);
  EXPECT_EQ(view.total_block_assignments(), 2u + 2u + 3u + 2u);
}

// ---------------------------------------------------------------------------
// Pruning schemes on the fixture
// ---------------------------------------------------------------------------

std::set<uint64_t> RetainedPairs(const std::vector<WeightedComparison>& v) {
  std::set<uint64_t> out;
  for (const auto& c : v) out.insert(PairKey(c.a, c.b));
  return out;
}

TEST(PruningTest, WepKeepsAboveMeanEdges) {
  Fixture f;
  MetaBlockingOptions opts;
  opts.weighting = WeightingScheme::kCbs;
  opts.pruning = PruningScheme::kWep;
  MetaBlockingStats stats;
  const auto retained =
      MetaBlocking(opts).Prune(f.blocks, f.collection, &stats);
  // Weights: (a0,b0)=3, (a0,b1)=1, (a1,b1)=1; mean = 5/3. Only (a0,b0) >= mean.
  EXPECT_EQ(RetainedPairs(retained),
            (std::set<uint64_t>{PairKey(f.a0, f.b0)}));
  EXPECT_EQ(stats.graph_edges, 3u);
  EXPECT_NEAR(stats.mean_weight, 5.0 / 3.0, 1e-12);
}

TEST(PruningTest, CepKeepsTopKGlobal) {
  Fixture f;
  MetaBlockingOptions opts;
  opts.weighting = WeightingScheme::kCbs;
  opts.pruning = PruningScheme::kCep;
  const auto retained = MetaBlocking(opts).Prune(f.blocks, f.collection);
  // K = BC/2 = 9/2 = 4 >= all 3 edges: everything retained.
  EXPECT_EQ(retained.size(), 3u);
  // Sorted descending by weight.
  EXPECT_DOUBLE_EQ(retained.front().weight, 3.0);
}

TEST(PruningTest, WnpUnionSemantics) {
  Fixture f;
  MetaBlockingOptions opts;
  opts.weighting = WeightingScheme::kCbs;
  opts.pruning = PruningScheme::kWnp;
  opts.reciprocal = false;
  const auto retained = MetaBlocking(opts).Prune(f.blocks, f.collection);
  // Node means: a0: (3+1)/2=2 -> keeps (a0,b0). b0: 3 -> keeps (a0,b0).
  // b1: (1+1)/2=1 -> keeps both its edges. a1: 1 -> keeps (a1,b1).
  EXPECT_EQ(RetainedPairs(retained),
            (std::set<uint64_t>{PairKey(f.a0, f.b0), PairKey(f.a0, f.b1),
                                PairKey(f.a1, f.b1)}));
}

TEST(PruningTest, WnpReciprocalSemantics) {
  Fixture f;
  MetaBlockingOptions opts;
  opts.weighting = WeightingScheme::kCbs;
  opts.pruning = PruningScheme::kWnp;
  opts.reciprocal = true;
  const auto retained = MetaBlocking(opts).Prune(f.blocks, f.collection);
  // (a0,b1) is nominated only by b1 (a0's mean 2 > 1): dropped.
  EXPECT_EQ(RetainedPairs(retained),
            (std::set<uint64_t>{PairKey(f.a0, f.b0), PairKey(f.a1, f.b1)}));
}

TEST(PruningTest, CnpKeepsTopKPerNode) {
  Fixture f;
  MetaBlockingOptions opts;
  opts.weighting = WeightingScheme::kCbs;
  opts.pruning = PruningScheme::kCnp;
  opts.reciprocal = false;
  const auto retained = MetaBlocking(opts).Prune(f.blocks, f.collection);
  // BC=9, |V|=4 -> k = round(9/4) = 2: every node keeps up to 2 edges, so
  // all three edges survive under union semantics.
  EXPECT_EQ(retained.size(), 3u);
}

TEST(PruningTest, RetainedSortedDeterministically) {
  Fixture f;
  MetaBlockingOptions opts;
  opts.weighting = WeightingScheme::kCbs;
  opts.pruning = PruningScheme::kWnp;
  const auto a = MetaBlocking(opts).Prune(f.blocks, f.collection);
  const auto b = MetaBlocking(opts).Prune(f.blocks, f.collection);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(PairKey(a[i].a, a[i].b), PairKey(b[i].a, b[i].b));
    EXPECT_GE(i == 0 ? 1e300 : a[i - 1].weight, a[i].weight);
  }
}

// ---------------------------------------------------------------------------
// Parameterized: full weighting × pruning grid on a generated cloud.
// Invariants: retained ⊆ graph edges, counts shrink, recall mostly survives.
// ---------------------------------------------------------------------------

struct SchemeCase {
  WeightingScheme weighting;
  PruningScheme pruning;
};

std::string SchemeCaseName(
    const ::testing::TestParamInfo<SchemeCase>& info) {
  return std::string(WeightingSchemeName(info.param.weighting)) + "_" +
         std::string(PruningSchemeName(info.param.pruning));
}

class MetaBlockingGrid : public ::testing::TestWithParam<SchemeCase> {
 protected:
  static void SetUpTestSuite() {
    datagen::LodCloudConfig cfg;
    cfg.seed = 47;
    cfg.num_real_entities = 250;
    cfg.num_kbs = 4;
    cfg.center_kbs = 2;
    auto cloud = datagen::GenerateLodCloud(cfg);
    ASSERT_TRUE(cloud.ok());
    auto collection = cloud->BuildCollection();
    ASSERT_TRUE(collection.ok());
    collection_ = new EntityCollection(std::move(collection).value());
    auto truth = GroundTruth::FromCloud(*cloud, *collection_);
    ASSERT_TRUE(truth.ok());
    truth_ = new GroundTruth(std::move(truth).value());
    blocks_ = new BlockCollection(TokenBlocking().Build(*collection_));
    blocks_->BuildEntityIndex(collection_->num_entities());
    baseline_ = new BlockingMetrics(EvaluateBlocks(
        *blocks_, *collection_, ResolutionMode::kCleanClean, *truth_));
  }
  static void TearDownTestSuite() {
    delete baseline_;
    delete blocks_;
    delete truth_;
    delete collection_;
    baseline_ = nullptr;
    blocks_ = nullptr;
    truth_ = nullptr;
    collection_ = nullptr;
  }

  static EntityCollection* collection_;
  static GroundTruth* truth_;
  static BlockCollection* blocks_;
  static BlockingMetrics* baseline_;
};

EntityCollection* MetaBlockingGrid::collection_ = nullptr;
GroundTruth* MetaBlockingGrid::truth_ = nullptr;
BlockCollection* MetaBlockingGrid::blocks_ = nullptr;
BlockingMetrics* MetaBlockingGrid::baseline_ = nullptr;

TEST_P(MetaBlockingGrid, PrunesWithoutCollapsingRecall) {
  MetaBlockingOptions opts;
  opts.weighting = GetParam().weighting;
  opts.pruning = GetParam().pruning;
  MetaBlockingStats stats;
  const auto retained =
      MetaBlocking(opts).Prune(*blocks_, *collection_, &stats);

  // Structural invariants.
  EXPECT_GT(retained.size(), 0u);
  EXPECT_LE(retained.size(), stats.graph_edges);
  EXPECT_EQ(stats.retained_edges, retained.size());
  for (const WeightedComparison& c : retained) {
    EXPECT_NE(c.a, c.b);
    EXPECT_TRUE(collection_->CrossKb(c.a, c.b));
    EXPECT_GE(c.weight, 0.0);
  }

  // Effectiveness: no more comparisons than the raw blocks, and PC within a
  // tolerable drop of the blocking PC (the poster's "discard comparisons
  // that are less likely to match"). Cardinality schemes (CEP/CNP) bound
  // retained count by BC-derived caps, which may exceed the edge count of a
  // small test graph — their pruning is only required when the cap binds.
  const BlockingMetrics m = EvaluateWeighted(
      retained, *truth_,
      BruteForceComparisons(*collection_, ResolutionMode::kCleanClean));
  EXPECT_LE(m.comparisons, baseline_->comparisons);
  EXPECT_GT(m.pair_completeness, baseline_->pair_completeness * 0.55);
  const bool weight_based = GetParam().pruning == PruningScheme::kWep ||
                            GetParam().pruning == PruningScheme::kWnp;
  if (weight_based) {
    EXPECT_LT(m.comparisons, baseline_->comparisons);
    EXPECT_GT(m.pair_quality, baseline_->pair_quality)
        << "weight pruning must raise precision";
  } else {
    EXPECT_GE(m.pair_quality, baseline_->pair_quality);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, MetaBlockingGrid,
    ::testing::Values(
        SchemeCase{WeightingScheme::kCbs, PruningScheme::kWep},
        SchemeCase{WeightingScheme::kCbs, PruningScheme::kCep},
        SchemeCase{WeightingScheme::kCbs, PruningScheme::kWnp},
        SchemeCase{WeightingScheme::kCbs, PruningScheme::kCnp},
        SchemeCase{WeightingScheme::kEcbs, PruningScheme::kWep},
        SchemeCase{WeightingScheme::kEcbs, PruningScheme::kCep},
        SchemeCase{WeightingScheme::kEcbs, PruningScheme::kWnp},
        SchemeCase{WeightingScheme::kEcbs, PruningScheme::kCnp},
        SchemeCase{WeightingScheme::kJs, PruningScheme::kWep},
        SchemeCase{WeightingScheme::kJs, PruningScheme::kCep},
        SchemeCase{WeightingScheme::kJs, PruningScheme::kWnp},
        SchemeCase{WeightingScheme::kJs, PruningScheme::kCnp},
        SchemeCase{WeightingScheme::kEjs, PruningScheme::kWep},
        SchemeCase{WeightingScheme::kEjs, PruningScheme::kCep},
        SchemeCase{WeightingScheme::kEjs, PruningScheme::kWnp},
        SchemeCase{WeightingScheme::kEjs, PruningScheme::kCnp},
        SchemeCase{WeightingScheme::kArcs, PruningScheme::kWep},
        SchemeCase{WeightingScheme::kArcs, PruningScheme::kCep},
        SchemeCase{WeightingScheme::kArcs, PruningScheme::kWnp},
        SchemeCase{WeightingScheme::kArcs, PruningScheme::kCnp}),
    SchemeCaseName);

TEST(SchemeNamesTest, AllNamed) {
  EXPECT_EQ(WeightingSchemeName(WeightingScheme::kCbs), "CBS");
  EXPECT_EQ(WeightingSchemeName(WeightingScheme::kEcbs), "ECBS");
  EXPECT_EQ(WeightingSchemeName(WeightingScheme::kJs), "JS");
  EXPECT_EQ(WeightingSchemeName(WeightingScheme::kEjs), "EJS");
  EXPECT_EQ(WeightingSchemeName(WeightingScheme::kArcs), "ARCS");
  EXPECT_EQ(PruningSchemeName(PruningScheme::kWep), "WEP");
  EXPECT_EQ(PruningSchemeName(PruningScheme::kCep), "CEP");
  EXPECT_EQ(PruningSchemeName(PruningScheme::kWnp), "WNP");
  EXPECT_EQ(PruningSchemeName(PruningScheme::kCnp), "CNP");
}

}  // namespace
}  // namespace minoan
