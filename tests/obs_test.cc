// Tests for the observability subsystem (src/obs/): metrics-registry merge
// correctness under concurrency, RAII span nesting and counter attribution,
// exporter golden files (Chrome-trace and minoan-stats-v1 JSON), the
// progressive-quality meter, and — the load-bearing contract — determinism
// parity: every result and checkpoint byte is identical with instrumentation
// enabled or disabled, at any thread count.

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "checkpoint_canon.h"
#include "core/minoan_er.h"
#include "core/session.h"
#include "datagen/lod_generator.h"
#include "gtest/gtest.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "util/serde.h"
#include "util/thread_pool.h"

namespace minoan {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::HistogramSnapshot;
using obs::MetricsRegistry;
using obs::PhaseSpan;
using obs::ProgressMeter;
using obs::ProgressSample;
using obs::StatsSnapshot;
using obs::TraceEvent;
using obs::TraceRecorder;

/// Pins the default registry's master switch for one test and restores the
/// previous state afterwards, so tests cannot leak a disabled registry into
/// their neighbors.
class ScopedRegistryEnabled {
 public:
  explicit ScopedRegistryEnabled(bool enabled)
      : saved_(MetricsRegistry::Default().enabled()) {
    MetricsRegistry::Default().set_enabled(enabled);
  }
  ~ScopedRegistryEnabled() { MetricsRegistry::Default().set_enabled(saved_); }

 private:
  bool saved_;
};

// ---------------------------------------------------------------------------
// Registry merge correctness under concurrency
// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterMergesSevenThreadsExactly) {
  ScopedRegistryEnabled on(true);
  Counter& counter =
      MetricsRegistry::Default().counter("test.counter_merge_7t");
  counter.Reset();

  constexpr int kThreads = 7;
  constexpr uint64_t kAddsPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, t] {
      for (uint64_t i = 0; i < kAddsPerThread; ++i) {
        counter.Add(static_cast<uint64_t>(t) + 1);  // thread t adds t+1 each
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Sum over t of (t+1) * kAddsPerThread = kAddsPerThread * 7*8/2.
  EXPECT_EQ(counter.Value(), kAddsPerThread * (kThreads * (kThreads + 1) / 2));
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(MetricsTest, HistogramMergesSevenThreadsExactly) {
  ScopedRegistryEnabled on(true);
  Histogram& histogram =
      MetricsRegistry::Default().histogram("test.histogram_merge_7t");
  histogram.Reset();

  constexpr int kThreads = 7;
  constexpr uint64_t kRecordsPerThread = 5'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (uint64_t i = 0; i < kRecordsPerThread; ++i) {
        // Values cycle 1..100, offset per thread so min/max span threads.
        histogram.Record(1 + (i + static_cast<uint64_t>(t) * 37) % 100);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, kThreads * kRecordsPerThread);
  EXPECT_EQ(snapshot.min, 1u);
  EXPECT_EQ(snapshot.max, 100u);
  // Every value is 1..100 so the mean must sit strictly inside.
  EXPECT_GT(snapshot.Mean(), 1.0);
  EXPECT_LT(snapshot.Mean(), 100.0);
  // Bucket counts must add back up to the total count.
  uint64_t bucket_total = 0;
  for (uint64_t bucket : snapshot.buckets) bucket_total += bucket;
  EXPECT_EQ(bucket_total, snapshot.count);

  histogram.Reset();
  const HistogramSnapshot empty = histogram.Snapshot();
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.min, std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(empty.max, 0u);
  EXPECT_EQ(empty.Mean(), 0.0);
}

TEST(MetricsTest, HistogramBucketBoundaries) {
  EXPECT_EQ(Histogram::BucketOf(0), 0u);
  EXPECT_EQ(Histogram::BucketOf(1), 1u);
  EXPECT_EQ(Histogram::BucketOf(2), 2u);
  EXPECT_EQ(Histogram::BucketOf(3), 2u);
  EXPECT_EQ(Histogram::BucketOf(4), 3u);
  EXPECT_EQ(Histogram::BucketOf(1023), 10u);
  EXPECT_EQ(Histogram::BucketOf(1024), 11u);
  // The overflow tail absorbs everything past the last bucket boundary.
  EXPECT_EQ(Histogram::BucketOf(std::numeric_limits<uint64_t>::max()),
            obs::kHistogramBuckets - 1);
}

// ---------------------------------------------------------------------------
// Quantile summaries from the log2 buckets
// ---------------------------------------------------------------------------

TEST(QuantileTest, EmptyHistogramIsZero) {
  const HistogramSnapshot empty;
  EXPECT_EQ(empty.Quantile(0.0), 0.0);
  EXPECT_EQ(empty.Quantile(0.5), 0.0);
  EXPECT_EQ(empty.Quantile(1.0), 0.0);
}

TEST(QuantileTest, SingleSampleIsExactAtEveryQuantile) {
  MetricsRegistry registry;
  for (uint64_t value : {uint64_t{0}, uint64_t{1}, uint64_t{7},
                         uint64_t{1000}}) {
    Histogram& histogram =
        registry.histogram("q.single." + std::to_string(value));
    histogram.Record(value);
    const HistogramSnapshot snapshot = histogram.Snapshot();
    for (double q : {0.0, 0.01, 0.5, 0.95, 0.99, 1.0}) {
      EXPECT_EQ(snapshot.Quantile(q), static_cast<double>(value))
          << "value=" << value << " q=" << q;
    }
  }
}

TEST(QuantileTest, AllEqualSamplesAreExact) {
  MetricsRegistry registry;
  Histogram& histogram = registry.histogram("q.all_equal");
  for (int i = 0; i < 100; ++i) histogram.Record(9);
  const HistogramSnapshot snapshot = histogram.Snapshot();
  for (double q : {0.01, 0.5, 0.95, 0.99}) {
    EXPECT_EQ(snapshot.Quantile(q), 9.0) << "q=" << q;
  }
}

TEST(QuantileTest, ExactBucketBoundaries) {
  // One sample per power of two: each lands exactly on its bucket's lower
  // boundary, so the rank walk and the per-bucket interpolation are both
  // exercised at the seams.
  MetricsRegistry registry;
  Histogram& histogram = registry.histogram("q.boundaries");
  for (uint64_t value : {uint64_t{1}, uint64_t{2}, uint64_t{4}, uint64_t{8}}) {
    histogram.Record(value);
  }
  const HistogramSnapshot snapshot = histogram.Snapshot();
  // rank 1 owns bucket [1,2): interpolates to its upper edge 2.
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.25), 2.0);
  // rank 2 owns bucket [2,4): upper edge 4.
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.5), 4.0);
  // rank 4 owns bucket [8,16): the [min,max] clamp pins it to max = 8.
  EXPECT_DOUBLE_EQ(snapshot.Quantile(1.0), 8.0);
}

TEST(QuantileTest, WithinOneBucketWidthOfSortedOracle) {
  MetricsRegistry registry;
  Histogram& histogram = registry.histogram("q.oracle");
  std::mt19937_64 rng(20260807);
  std::vector<uint64_t> samples;
  samples.reserve(1000);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t value = rng() % (uint64_t{1} << 20);
    samples.push_back(value);
    histogram.Record(value);
  }
  std::sort(samples.begin(), samples.end());
  const HistogramSnapshot snapshot = histogram.Snapshot();

  double previous = 0.0;
  for (double q : {0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
    // Nearest-rank oracle with the estimator's own rank convention.
    const size_t rank = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(q * samples.size())));
    const uint64_t truth = samples[rank - 1];
    const double estimate = snapshot.Quantile(q);
    // The true order statistic and the estimate live in the same log2
    // bucket, so they differ by less than that bucket's width.
    const size_t bucket = Histogram::BucketOf(truth);
    const double width =
        bucket == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(bucket) - 1);
    EXPECT_LE(std::abs(estimate - static_cast<double>(truth)), width)
        << "q=" << q << " truth=" << truth;
    EXPECT_GE(estimate, previous) << "quantiles must be monotone, q=" << q;
    previous = estimate;
  }
}

TEST(MetricsTest, GaugeSetAddReset) {
  ScopedRegistryEnabled on(true);
  Gauge& gauge = MetricsRegistry::Default().gauge("test.gauge");
  gauge.Reset();
  gauge.Set(42);
  EXPECT_EQ(gauge.Value(), 42);
  gauge.Add(-50);
  EXPECT_EQ(gauge.Value(), -8);
  gauge.Reset();
  EXPECT_EQ(gauge.Value(), 0);
}

TEST(MetricsTest, DisabledRegistryDropsUpdates) {
  MetricsRegistry registry;  // private registry: no cross-test pollution
  Counter& counter = registry.counter("c");
  Gauge& gauge = registry.gauge("g");
  Histogram& histogram = registry.histogram("h");

  registry.set_enabled(false);
  counter.Add(7);
  gauge.Set(7);
  histogram.Record(7);
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(gauge.Value(), 0);
  EXPECT_EQ(histogram.Snapshot().count, 0u);

  registry.set_enabled(true);
  counter.Add(7);
  gauge.Set(7);
  histogram.Record(7);
  EXPECT_EQ(counter.Value(), 7u);
  EXPECT_EQ(gauge.Value(), 7);
  EXPECT_EQ(histogram.Snapshot().count, 1u);
}

TEST(MetricsTest, SnapshotIsNameSortedAndStable) {
  MetricsRegistry registry;
  registry.counter("zebra").Add(1);
  registry.counter("apple").Add(2);
  registry.counter("mango").Add(3);
  registry.gauge("beta").Set(-4);
  registry.histogram("delta").Record(9);

  const StatsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 3u);
  EXPECT_EQ(snapshot.counters[0].first, "apple");
  EXPECT_EQ(snapshot.counters[1].first, "mango");
  EXPECT_EQ(snapshot.counters[2].first, "zebra");
  EXPECT_EQ(snapshot.CounterValue("mango"), 3u);
  EXPECT_EQ(snapshot.CounterValue("not-registered"), 0u);
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].second, -4);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].second.sum, 9u);

  // Same-name lookups return the same metric object.
  EXPECT_EQ(&registry.counter("apple"), &registry.counter("apple"));

  registry.ResetAll();
  const StatsSnapshot after = registry.Snapshot();
  ASSERT_EQ(after.counters.size(), 3u);  // names survive a reset
  EXPECT_EQ(after.CounterValue("zebra"), 0u);
}

// ---------------------------------------------------------------------------
// Scoped (per-label) metric views
// ---------------------------------------------------------------------------

TEST(ScopedRegistryTest, DualWriteSumsToProcessTotal) {
  MetricsRegistry parent;
  obs::ScopedRegistry acme(&parent, "acme");
  obs::ScopedRegistry globex(&parent, "globex");

  obs::ScopedCounter acme_comparisons = acme.scoped_counter("comparisons");
  obs::ScopedCounter globex_comparisons = globex.scoped_counter("comparisons");
  acme_comparisons.Add(100);
  acme_comparisons.Increment();
  globex_comparisons.Add(41);

  // Each label sees only its own traffic; the parent sees the sum — the
  // invariant validate_obs.py --tenant checks on real servers.
  EXPECT_EQ(acme.Snapshot().CounterValue("comparisons"), 101u);
  EXPECT_EQ(globex.Snapshot().CounterValue("comparisons"), 41u);
  EXPECT_EQ(parent.Snapshot().CounterValue("comparisons"), 142u);
  EXPECT_EQ(acme.label(), "acme");
}

TEST(ScopedRegistryTest, ScopedHistogramRecordsInBothDistributions) {
  MetricsRegistry parent;
  obs::ScopedRegistry scope(&parent, "acme");
  obs::ScopedHistogram micros = scope.scoped_histogram("request_micros");
  micros.Record(10);
  micros.Record(1000);

  const HistogramSnapshot local =
      scope.histogram("request_micros").Snapshot();
  const HistogramSnapshot process =
      parent.histogram("request_micros").Snapshot();
  EXPECT_EQ(local.count, 2u);
  EXPECT_EQ(process.count, 2u);
  EXPECT_EQ(local.sum, 1010u);
  EXPECT_EQ(local.min, 10u);
  EXPECT_EQ(local.max, 1000u);
}

TEST(ScopedRegistryTest, ParentMasterSwitchGovernsShadows) {
  MetricsRegistry parent;
  obs::ScopedRegistry scope(&parent, "acme");
  obs::ScopedCounter counter = scope.scoped_counter("c");

  parent.set_enabled(false);
  counter.Add(7);
  scope.histogram("h").Record(7);
  EXPECT_EQ(parent.Snapshot().CounterValue("c"), 0u);
  EXPECT_EQ(scope.Snapshot().CounterValue("c"), 0u);
  EXPECT_EQ(scope.histogram("h").Snapshot().count, 0u);

  parent.set_enabled(true);
  counter.Add(7);
  EXPECT_EQ(parent.Snapshot().CounterValue("c"), 7u);
  EXPECT_EQ(scope.Snapshot().CounterValue("c"), 7u);
}

TEST(ScopedRegistryTest, SnapshotIsLocalAndNameSorted) {
  MetricsRegistry parent;
  parent.counter("parent.only").Add(1);
  obs::ScopedRegistry scope(&parent, "acme");
  scope.counter("zebra").Add(1);
  scope.counter("apple").Add(2);
  scope.gauge("depth").Set(-3);

  const StatsSnapshot snapshot = scope.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].first, "apple");
  EXPECT_EQ(snapshot.counters[1].first, "zebra");
  EXPECT_EQ(snapshot.CounterValue("parent.only"), 0u);  // not leaked in
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].second, -3);
  // Same-name lookups return the same local metric object.
  EXPECT_EQ(&scope.counter("apple"), &scope.counter("apple"));
}

// ---------------------------------------------------------------------------
// Structured event log
// ---------------------------------------------------------------------------

TEST(EventLogTest, LogStampsAndSnapshots) {
  obs::EventLog log;
  log.Log(obs::Severity::kWarn, "slow_request", {{"tenant", "acme"}},
          {{"micros", 999}});
  ASSERT_EQ(log.size(), 1u);
  const std::vector<obs::Event> events = log.snapshot();
  EXPECT_EQ(events[0].severity, obs::Severity::kWarn);
  EXPECT_EQ(events[0].kind, "slow_request");
  ASSERT_EQ(events[0].text.size(), 1u);
  EXPECT_EQ(events[0].text[0].first, "tenant");
  EXPECT_EQ(events[0].text[0].second, "acme");
  ASSERT_EQ(events[0].values.size(), 1u);
  EXPECT_EQ(events[0].values[0].second, 999u);
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_EQ(log.filtered(), 0u);
}

TEST(EventLogTest, RingDropsOldestWhenFull) {
  obs::EventLog::Options options;
  options.max_events = 3;
  obs::EventLog log(options);
  for (int i = 0; i < 5; ++i) {
    log.Log(obs::Severity::kInfo, "e" + std::to_string(i));
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.dropped(), 2u);
  const std::vector<obs::Event> events = log.snapshot();
  EXPECT_EQ(events[0].kind, "e2");  // e0, e1 evicted oldest-first
  EXPECT_EQ(events[2].kind, "e4");
}

TEST(EventLogTest, SeverityFilterDiscardsAtAppend) {
  obs::EventLog::Options options;
  options.min_severity = obs::Severity::kWarn;
  obs::EventLog log(options);
  log.Log(obs::Severity::kInfo, "chatty");
  log.Log(obs::Severity::kWarn, "warning");
  log.Log(obs::Severity::kError, "broken");
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.filtered(), 1u);
  EXPECT_EQ(log.snapshot()[0].kind, "warning");
}

TEST(EventLogTest, WriteJsonlGolden) {
  obs::EventLog log;
  obs::Event slow;
  slow.ts_us = 123;
  slow.severity = obs::Severity::kWarn;
  slow.kind = "slow_request";
  slow.text = {{"request", "step"}, {"tenant", "acme"}};
  slow.values = {{"request_id", 7}, {"micros", 400000}};
  log.Append(slow);
  obs::Event evicted;
  evicted.ts_us = 456;
  evicted.severity = obs::Severity::kInfo;
  evicted.kind = "session_evicted";
  evicted.text = {{"tenant", "a \"b\""}};
  evicted.values = {{"session", 2}};
  log.Append(evicted);

  std::ostringstream out;
  log.WriteJsonl(out);
  EXPECT_EQ(out.str(),
            "{\"ts_us\":123,\"severity\":\"warn\",\"kind\":\"slow_request\","
            "\"request\":\"step\",\"tenant\":\"acme\","
            "\"request_id\":7,\"micros\":400000}\n"
            "{\"ts_us\":456,\"severity\":\"info\","
            "\"kind\":\"session_evicted\",\"tenant\":\"a \\\"b\\\"\","
            "\"session\":2}\n");
}

// ---------------------------------------------------------------------------
// Span nesting and counter attribution
// ---------------------------------------------------------------------------

TEST(TraceTest, SpansNestAndCompleteInnerFirst) {
  ScopedRegistryEnabled on(true);
  TraceRecorder recorder;
  {
    PhaseSpan outer(&recorder, "outer");
    {
      PhaseSpan inner(&recorder, "inner");
      {
        PhaseSpan innermost(&recorder, "innermost");
      }
    }
    PhaseSpan sibling(&recorder, "sibling");
  }

  const std::vector<TraceEvent> events = recorder.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Completion order: innermost, inner, sibling, outer.
  EXPECT_EQ(events[0].name, "innermost");
  EXPECT_EQ(events[0].depth, 2u);
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_EQ(events[2].name, "sibling");
  EXPECT_EQ(events[2].depth, 1u);  // depth restored after inner closed
  EXPECT_EQ(events[3].name, "outer");
  EXPECT_EQ(events[3].depth, 0u);

  // All on this thread; children start no earlier and end no later than
  // their parent.
  const TraceEvent& outer_event = events[3];
  for (const TraceEvent& event : events) {
    EXPECT_EQ(event.tid, outer_event.tid);
    EXPECT_GE(event.start_us, outer_event.start_us);
    EXPECT_LE(event.start_us + event.dur_us,
              outer_event.start_us + outer_event.dur_us);
  }
}

TEST(TraceTest, SpanAttributesCounterDeltas) {
  ScopedRegistryEnabled on(true);
  Counter& counter = MetricsRegistry::Default().counter("test.span_delta");
  counter.Reset();

  TraceRecorder recorder;
  {
    PhaseSpan outer(&recorder, "outer");
    {
      PhaseSpan quiet(&recorder, "quiet");
    }
    {
      PhaseSpan busy(&recorder, "busy");
      counter.Add(5);
    }
  }

  const std::vector<TraceEvent> events = recorder.snapshot();
  ASSERT_EQ(events.size(), 3u);
  auto delta_of = [](const TraceEvent& event, std::string_view name) {
    for (const auto& [counter_name, delta] : event.counter_deltas) {
      if (counter_name == name) return delta;
    }
    return uint64_t{0};
  };
  EXPECT_EQ(delta_of(events[0], "test.span_delta"), 0u);  // quiet
  EXPECT_EQ(delta_of(events[1], "test.span_delta"), 5u);  // busy
  EXPECT_EQ(delta_of(events[2], "test.span_delta"), 5u);  // outer sees both
}

TEST(TraceTest, NullRecorderIsInert) {
  PhaseSpan inert(nullptr, "never-recorded");
  EXPECT_EQ(inert.ElapsedMillis(), 0.0);

  // A null span must not disturb the nesting depth of real spans around it.
  ScopedRegistryEnabled on(true);
  TraceRecorder recorder;
  {
    PhaseSpan ghost(nullptr, "ghost");
    PhaseSpan real(&recorder, "real");
  }
  const std::vector<TraceEvent> events = recorder.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].depth, 0u);
}

// ---------------------------------------------------------------------------
// Exporter goldens
// ---------------------------------------------------------------------------

TEST(TraceTest, EmptyChromeTraceIsValid) {
  TraceRecorder recorder;
  std::ostringstream out;
  recorder.WriteChromeTrace(out);
  EXPECT_EQ(out.str(), "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}\n");
}

TEST(TraceTest, ChromeTraceGolden) {
  TraceRecorder recorder;
  TraceEvent first;
  first.name = "blocking";
  first.tid = 0;
  first.depth = 1;
  first.start_us = 100;
  first.dur_us = 250;
  first.counter_deltas.emplace_back("blocking.chunks", 4);
  first.counter_deltas.emplace_back("blocking.postings", 1234);
  recorder.Append(first);
  TraceEvent second;
  second.name = "a \"quoted\"\nname";
  second.tid = 3;
  second.depth = 0;
  second.start_us = 0;
  second.dur_us = 400;
  recorder.Append(second);

  std::ostringstream out;
  recorder.WriteChromeTrace(out);
  EXPECT_EQ(
      out.str(),
      "{\"traceEvents\":["
      "{\"name\":\"blocking\",\"ph\":\"X\",\"ts\":100,\"dur\":250,"
      "\"pid\":1,\"tid\":0,\"args\":{\"depth\":1,"
      "\"blocking.chunks\":4,\"blocking.postings\":1234}},"
      "{\"name\":\"a \\\"quoted\\\"\\nname\",\"ph\":\"X\",\"ts\":0,"
      "\"dur\":400,\"pid\":1,\"tid\":3,\"args\":{\"depth\":0}}"
      "],\"displayTimeUnit\":\"ms\"}\n");
}

TEST(MetricsTest, WriteJsonStringEscapes) {
  std::ostringstream out;
  obs::WriteJsonString(out, "a\"b\\c\nd\re\tf\x01g");
  EXPECT_EQ(out.str(), "\"a\\\"b\\\\c\\nd\\re\\tf\\u0001g\"");
}

TEST(ReportTest, WriteStatsJsonGolden) {
  obs::StatsReport report;
  report.phases.push_back({"blocking", 12.5, 300});
  report.phases.push_back({"meta-blocking", 7.25, 120});
  report.progress.push_back({1000, 10, 1.5});
  report.progress.push_back({2000, 14, 3.0});
  report.pool.tasks_executed = 9;
  report.pool.queue_wait_micros = 400;
  report.pool.worker_busy_micros = {100, 200};
  report.metrics.counters.emplace_back("blocking.chunks", 4);
  report.metrics.gauges.emplace_back("pool.workers", 2);
  HistogramSnapshot histogram;
  histogram.count = 2;
  histogram.sum = 10;
  histogram.min = 3;
  histogram.max = 7;
  histogram.buckets[2] = 1;  // the 3, in [2,4)
  histogram.buckets[3] = 1;  // the 7, in [4,8)
  report.metrics.histograms.emplace_back("spill.runs_per_sink", histogram);
  obs::TenantBreakdown tenant;
  tenant.tenant = "acme";
  tenant.sessions = 2;
  tenant.requests = 9;
  tenant.comparisons = 1000;
  tenant.matches = 10;
  tenant.spill_bytes = 0;
  tenant.p50_request_micros = 10.0;
  tenant.p95_request_micros = 20.0;
  tenant.p99_request_micros = 30.5;
  report.tenants.push_back(tenant);
  report.peak_rss_bytes = 1048576;

  std::ostringstream out;
  obs::WriteStatsJson(out, report);
  EXPECT_EQ(
      out.str(),
      "{\"schema\":\"minoan-stats-v1\","
      "\"phases\":["
      "{\"name\":\"blocking\",\"millis\":12.500,\"cardinality\":300},"
      "{\"name\":\"meta-blocking\",\"millis\":7.250,\"cardinality\":120}],"
      "\"progress\":["
      "{\"comparisons\":1000,\"matches\":10,\"elapsed_ms\":1.500,"
      "\"new_matches_per_1k\":10.000},"
      "{\"comparisons\":2000,\"matches\":14,\"elapsed_ms\":3.000,"
      "\"new_matches_per_1k\":4.000}],"
      "\"pool\":{\"tasks_executed\":9,\"queue_wait_micros\":400,"
      "\"busy_micros_total\":300,\"worker_busy_micros\":[100,200]},"
      "\"counters\":{\"blocking.chunks\":4},"
      "\"gauges\":{\"pool.workers\":2},"
      "\"histograms\":{\"spill.runs_per_sink\":"
      "{\"count\":2,\"sum\":10,\"min\":3,\"max\":7,\"mean\":5.000,"
      "\"p50\":4.000,\"p95\":7.000,\"p99\":7.000}},"
      "\"tenants\":{\"acme\":{\"sessions\":2,\"requests\":9,"
      "\"comparisons\":1000,\"matches\":10,\"spill_bytes\":0,"
      "\"request_micros\":{\"p50\":10.000,\"p95\":20.000,\"p99\":30.500}}},"
      "\"peak_rss_bytes\":1048576}\n");
}

TEST(ReportTest, PeakRssIsPositiveAndMonotone) {
  const uint64_t before = obs::PeakRssBytes();
  EXPECT_GT(before, 0u);
  // Touch a few MB so the high-water mark cannot shrink below it.
  std::vector<char> ballast(8 << 20, 1);
  EXPECT_GE(obs::PeakRssBytes(), before);
  EXPECT_GT(ballast[12345], 0);
}

// ---------------------------------------------------------------------------
// Progress meter
// ---------------------------------------------------------------------------

TEST(ProgressTest, MeterSamplesOnCadence) {
  ProgressMeter meter;
  meter.Configure(100);
  ASSERT_TRUE(meter.enabled());
  meter.Start();

  meter.OnProgress(50, 1);    // below the first threshold: no sample
  meter.OnProgress(99, 2);    // still below
  meter.OnProgress(100, 3);   // crosses 100
  meter.OnProgress(150, 4);   // below 200
  meter.OnProgress(260, 5);   // crosses 200 (and 300 is the next threshold)
  meter.OnProgress(299, 6);   // below 300
  meter.OnProgress(300, 7);   // crosses 300

  const std::vector<ProgressSample> samples = meter.samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].comparisons, 100u);
  EXPECT_EQ(samples[0].matches, 3u);
  EXPECT_EQ(samples[1].comparisons, 260u);
  EXPECT_EQ(samples[1].matches, 5u);
  EXPECT_EQ(samples[2].comparisons, 300u);
  EXPECT_EQ(samples[2].matches, 7u);

  // The final unconditional Sample() on the same count updates in place
  // instead of duplicating the point.
  meter.Sample(300, 8);
  ASSERT_EQ(meter.samples().size(), 3u);
  EXPECT_EQ(meter.samples()[2].matches, 8u);

  // Start() resets the curve.
  meter.Start();
  EXPECT_TRUE(meter.samples().empty());
}

TEST(ProgressTest, DisabledMeterNeverSamples) {
  ProgressMeter meter;
  meter.Configure(0);
  EXPECT_FALSE(meter.enabled());
  meter.Start();
  meter.OnProgress(1'000'000, 5);
  EXPECT_TRUE(meter.samples().empty());
}

TEST(ProgressTest, MatchesPerThousandSlope) {
  std::vector<ProgressSample> samples;
  samples.push_back({500, 5, 1.0});    // from origin: 5 / 0.5k = 10
  samples.push_back({1500, 8, 2.0});   // 3 new over 1k = 3
  samples.push_back({1500, 9, 3.0});   // no new comparisons: slope 0
  EXPECT_DOUBLE_EQ(obs::MatchesPerThousand(samples, 0), 10.0);
  EXPECT_DOUBLE_EQ(obs::MatchesPerThousand(samples, 1), 3.0);
  EXPECT_DOUBLE_EQ(obs::MatchesPerThousand(samples, 2), 0.0);
  EXPECT_DOUBLE_EQ(obs::MatchesPerThousand(samples, 99), 0.0);
}

// ---------------------------------------------------------------------------
// Thread-pool utilization stats
// ---------------------------------------------------------------------------

TEST(PoolStatsTest, CountsTasksAndWorkers) {
  ScopedRegistryEnabled on(true);
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  for (int i = 0; i < 24; ++i) {
    pool.Submit([&ran] {
      ran.fetch_add(1);
      // Spin a moment so busy time is measurable on at least one worker.
      volatile int sink = 0;
      for (int j = 0; j < 50'000; ++j) sink = sink + j;
    });
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 24);

  const ThreadPoolStats stats = pool.Stats();
  EXPECT_EQ(stats.tasks_executed, 24u);
  ASSERT_EQ(stats.worker_busy_micros.size(), 3u);
  EXPECT_EQ(stats.TotalBusyMicros(),
            stats.worker_busy_micros[0] + stats.worker_busy_micros[1] +
                stats.worker_busy_micros[2]);
}

TEST(PoolStatsTest, DisabledRegistrySkipsTimingButCountsTasks) {
  ScopedRegistryEnabled off(false);
  ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) pool.Submit([] {});
  pool.Wait();
  const ThreadPoolStats stats = pool.Stats();
  EXPECT_EQ(stats.tasks_executed, 8u);
  EXPECT_EQ(stats.queue_wait_micros, 0u);
  EXPECT_EQ(stats.TotalBusyMicros(), 0u);
}

// ---------------------------------------------------------------------------
// Determinism parity: instrumentation is out-of-band
// ---------------------------------------------------------------------------

EntityCollection MakeCloud(uint64_t seed) {
  datagen::LodCloudConfig cfg;
  cfg.seed = seed;
  cfg.num_real_entities = 220;
  cfg.num_kbs = 4;
  cfg.center_kbs = 2;
  auto cloud = datagen::GenerateLodCloud(cfg);
  EXPECT_TRUE(cloud.ok());
  auto collection = cloud->BuildCollection();
  EXPECT_TRUE(collection.ok());
  return std::move(collection).value();
}

using testutil::CanonicalizeCheckpoint;

struct ParityRun {
  ResolutionReport report;
  std::string checkpoint;
};

ParityRun RunInstrumented(const EntityCollection& collection,
                          uint32_t num_threads, bool instrumented,
                          bool pin_threads = false) {
  ScopedRegistryEnabled toggle(instrumented);
  WorkflowOptions options;
  options.progressive.matcher.threshold = 0.3;
  options.num_threads = num_threads;
  options.pin_threads = pin_threads;
  options.obs.enable_trace = instrumented;
  options.obs.progress_every = instrumented ? 100 : 0;

  auto session = ResolutionSession::Open(collection, options);
  EXPECT_TRUE(session.ok());
  // Step in installments so progress sampling and step spans actually fire.
  while (!session->finished()) session->Step(500);

  ParityRun run;
  run.report = session->Report();
  std::ostringstream checkpoint;
  EXPECT_TRUE(session->Checkpoint(checkpoint).ok());
  run.checkpoint = CanonicalizeCheckpoint(checkpoint.str());

  if (instrumented) {
    // The instrumented run must actually have observed something — guards
    // against this test silently comparing two uninstrumented runs.
    EXPECT_FALSE(run.report.progress.empty());
    EXPECT_GT(run.report.metrics.CounterValue("blocking.chunks"), 0u);
    std::ostringstream trace;
    session->WriteTraceJson(trace);
    EXPECT_NE(trace.str().find("\"name\":\"blocking\""), std::string::npos);
    std::ostringstream stats;
    session->WriteStatsJson(stats);
    EXPECT_NE(stats.str().find("\"schema\":\"minoan-stats-v1\""),
              std::string::npos);
  }
  return run;
}

void ExpectSameMatches(const ResolutionReport& a, const ResolutionReport& b) {
  EXPECT_EQ(a.progressive.run.comparisons_executed,
            b.progressive.run.comparisons_executed);
  ASSERT_EQ(a.progressive.run.matches.size(), b.progressive.run.matches.size());
  for (size_t i = 0; i < a.progressive.run.matches.size(); ++i) {
    const MatchEvent& ma = a.progressive.run.matches[i];
    const MatchEvent& mb = b.progressive.run.matches[i];
    EXPECT_EQ(ma.a, mb.a) << "match " << i;
    EXPECT_EQ(ma.b, mb.b) << "match " << i;
    EXPECT_EQ(ma.comparisons_done, mb.comparisons_done) << "match " << i;
    EXPECT_EQ(std::bit_cast<uint64_t>(ma.similarity),
              std::bit_cast<uint64_t>(mb.similarity))
        << "match " << i;
  }
}

TEST(ObsParityTest, InstrumentationIsOutOfBand) {
  const EntityCollection collection = MakeCloud(617);
  for (uint32_t num_threads : {1u, 4u}) {
    SCOPED_TRACE("num_threads=" + std::to_string(num_threads));
    const ParityRun plain =
        RunInstrumented(collection, num_threads, /*instrumented=*/false);
    const ParityRun instrumented =
        RunInstrumented(collection, num_threads, /*instrumented=*/true);

    ExpectSameMatches(plain.report, instrumented.report);
    // Byte-identical checkpoints (wall-clock doubles canonicalized): the
    // obs options are excluded from the options digest by design, so a
    // checkpoint taken with tracing on restores under any obs config.
    EXPECT_EQ(plain.checkpoint, instrumented.checkpoint);
  }
}

TEST(ObsParityTest, ThreadPinningIsOutOfBand) {
  // --pin-threads is a cache-placement hint: at 1 and 4 threads, a pinned
  // run must produce the identical match sequence and (canonicalized)
  // checkpoint bytes as an unpinned one — and like num_threads it is
  // excluded from the options digest, so checkpoints cross over freely.
  const EntityCollection collection = MakeCloud(617);
  for (uint32_t num_threads : {1u, 4u}) {
    SCOPED_TRACE("num_threads=" + std::to_string(num_threads));
    const ParityRun unpinned = RunInstrumented(
        collection, num_threads, /*instrumented=*/false, /*pin_threads=*/false);
    const ParityRun pinned = RunInstrumented(
        collection, num_threads, /*instrumented=*/false, /*pin_threads=*/true);
    ExpectSameMatches(unpinned.report, pinned.report);
    EXPECT_EQ(unpinned.checkpoint, pinned.checkpoint);
  }
}

TEST(ObsParityTest, InstrumentedCheckpointRestoresWithoutInstrumentation) {
  const EntityCollection collection = MakeCloud(619);
  WorkflowOptions traced;
  traced.progressive.matcher.threshold = 0.3;
  traced.obs.enable_trace = true;
  traced.obs.progress_every = 50;

  std::string checkpoint;
  {
    ScopedRegistryEnabled on(true);
    auto session = ResolutionSession::Open(collection, traced);
    ASSERT_TRUE(session.ok());
    session->Step(400);
    std::ostringstream out;
    ASSERT_TRUE(session->Checkpoint(out).ok());
    checkpoint = out.str();
  }

  // Restore under different obs settings (tracing off, meter off): the obs
  // options are out-of-band, so the digest matches and the resumed run
  // finishes exactly like an uninterrupted untraced run.
  WorkflowOptions plain;
  plain.progressive.matcher.threshold = 0.3;
  ScopedRegistryEnabled off(false);
  std::istringstream in(checkpoint);
  auto restored = ResolutionSession::Restore(collection, plain, in);
  ASSERT_TRUE(restored.ok());
  restored->Step(0);

  auto reference = ResolutionSession::Open(collection, plain);
  ASSERT_TRUE(reference.ok());
  reference->Step(0);
  ExpectSameMatches(reference->Report(), restored->Report());
}

}  // namespace
}  // namespace minoan
