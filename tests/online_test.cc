// Unit tests for the online subsystem: post-finalize appends, incremental
// blocking parity with a batch rebuild, resumable budgets, and Query
// determinism.

#include <algorithm>
#include <cstring>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "blocking/blocking_method.h"
#include "core/online_session.h"
#include "datagen/lod_generator.h"
#include "gtest/gtest.h"
#include "online/incremental_block_index.h"
#include "online/incremental_collection.h"
#include "online/online_resolver.h"
#include "progressive/state.h"
#include "rdf/ntriples.h"
#include "util/hash.h"

namespace minoan {
namespace {

using online::DeltaPair;
using online::IncrementalBlockIndex;
using online::IncrementalCollection;
using online::OnlineBlockingOptions;
using online::OnlineOptions;
using online::OnlineResolver;
using online::OnlineStepResult;
using online::QueryCandidate;
using rdf::NTriplesParser;
using rdf::Triple;

std::vector<Triple> Parse(const std::string& doc) {
  NTriplesParser parser;
  auto result = parser.ParseString(doc);
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

using online::GroupBySubject;

// A small two-KB cloud with literal-only descriptions (so batch and online
// ingestion classify every triple identically) plus one sameAs interlink.
constexpr const char* kKbA = R"(
<http://a.org/r/crete> <http://a.org/v/name> "Crete island history" .
<http://a.org/r/knossos> <http://a.org/v/name> "Knossos bronze palace" .
<http://a.org/r/heraklion> <http://a.org/v/name> "Heraklion port city" .
<http://a.org/r/heraklion> <http://www.w3.org/2002/07/owl#sameAs> <http://b.org/p/heraklion> .
<http://a.org/r/phaistos> <http://a.org/v/name> "Phaistos disc ruins" .
)";

constexpr const char* kKbB = R"(
<http://b.org/p/crete> <http://b.org/v/label> "Crete island" .
<http://b.org/p/heraklion> <http://b.org/v/label> "Heraklion city walls" .
<http://b.org/p/phaistos> <http://b.org/v/label> "Phaistos palace disc" .
<http://b.org/p/zakros> <http://b.org/v/label> "Zakros gorge" .
)";

using IriPair = std::pair<std::string, std::string>;

IriPair MakeIriPair(const EntityCollection& c, EntityId a, EntityId b) {
  std::string ia(c.EntityIri(a));
  std::string ib(c.EntityIri(b));
  if (ib < ia) std::swap(ia, ib);
  return {ia, ib};
}

std::set<IriPair> BatchPairs(const EntityCollection& c,
                             const BlockingMethod& method,
                             ResolutionMode mode) {
  BlockCollection blocks = method.Build(c);
  std::set<IriPair> out;
  for (const Comparison& cmp : blocks.DistinctComparisons(c, mode)) {
    out.insert(MakeIriPair(c, cmp.a, cmp.b));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Post-finalize appends (IncrementalCollection)
// ---------------------------------------------------------------------------

TEST(IncrementalCollectionTest, AppendAfterFinalize) {
  IncrementalCollection inc;
  const uint32_t kb = inc.EnsureKb("kbA");
  EXPECT_EQ(inc.EnsureKb("kbA"), kb);  // idempotent

  for (const auto& entity : GroupBySubject(Parse(kKbA))) {
    ASSERT_TRUE(inc.Ingest(kb, entity).ok());
  }
  EXPECT_EQ(inc.num_entities(), 4u);
  EXPECT_TRUE(inc.collection().finalized());

  const EntityId crete = inc.collection().FindByIri("http://a.org/r/crete");
  ASSERT_NE(crete, kInvalidEntity);
  const uint32_t tok = inc.collection().tokens().Find("crete");
  ASSERT_NE(tok, kInternNotFound);
  EXPECT_EQ(inc.collection().TokenDf(tok), 1u);
}

TEST(IncrementalCollectionTest, DuplicateSubjectRejected) {
  IncrementalCollection inc;
  const uint32_t kb = inc.EnsureKb("kbA");
  const auto entities = GroupBySubject(Parse(kKbA));
  ASSERT_TRUE(inc.Ingest(kb, entities[0]).ok());
  auto again = inc.Ingest(kb, entities[0]);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kAlreadyExists);

  // The same IRI in a DIFFERENT KB is a distinct description.
  const uint32_t other = inc.EnsureKb("kbB");
  EXPECT_TRUE(inc.Ingest(other, entities[0]).ok());
  EXPECT_EQ(inc.num_entities(), 2u);
}

TEST(IncrementalCollectionTest, BackwardRelationResolved) {
  const char* doc = R"(
<http://x/a> <http://x/v/name> "alpha settlement" .
<http://x/b> <http://x/v/name> "beta harbor" .
<http://x/b> <http://x/v/near> <http://x/a> .
)";
  IncrementalCollection inc;
  const uint32_t kb = inc.EnsureKb("x");
  for (const auto& entity : GroupBySubject(Parse(doc))) {
    ASSERT_TRUE(inc.Ingest(kb, entity).ok());
  }
  const EntityId a = inc.collection().FindByIri("http://x/a");
  const EntityId b = inc.collection().FindByIri("http://x/b");
  ASSERT_EQ(inc.collection().entity(b).relations.size(), 1u);
  EXPECT_EQ(inc.collection().entity(b).relations[0].target, a);
}

TEST(IncrementalCollectionTest, SameAsResolvedOnline) {
  IncrementalCollection inc;
  const uint32_t kb_b = inc.EnsureKb("kbB");
  for (const auto& entity : GroupBySubject(Parse(kKbB))) {
    ASSERT_TRUE(inc.Ingest(kb_b, entity).ok());
  }
  const uint32_t kb_a = inc.EnsureKb("kbA");
  for (const auto& entity : GroupBySubject(Parse(kKbA))) {
    ASSERT_TRUE(inc.Ingest(kb_a, entity).ok());
  }
  ASSERT_EQ(inc.collection().same_as_links().size(), 1u);
  const SameAsLink link = inc.collection().same_as_links()[0];
  EXPECT_EQ(inc.collection().EntityIri(link.a), "http://a.org/r/heraklion");
  EXPECT_EQ(inc.collection().EntityIri(link.b), "http://b.org/p/heraklion");
}

// ---------------------------------------------------------------------------
// Incremental blocking parity with a batch rebuild
// ---------------------------------------------------------------------------

/// Ingests both KBs in an interleaved order and returns (collection, union
/// of all delta pairs as IRI pairs).
std::pair<IncrementalCollection, std::set<IriPair>> IngestInterleaved(
    const OnlineBlockingOptions& blocking) {
  IncrementalCollection inc;
  IncrementalBlockIndex index(blocking);
  const uint32_t kb_a = inc.EnsureKb("kbA");
  const uint32_t kb_b = inc.EnsureKb("kbB");
  const auto ea = GroupBySubject(Parse(kKbA));
  const auto eb = GroupBySubject(Parse(kKbB));

  std::vector<std::pair<uint32_t, const std::vector<Triple>*>> order;
  for (size_t i = 0; i < std::max(ea.size(), eb.size()); ++i) {
    if (i < eb.size()) order.push_back({kb_b, &eb[i]});
    if (i < ea.size()) order.push_back({kb_a, &ea[i]});
  }

  std::set<IriPair> emitted;
  std::vector<DeltaPair> delta;
  for (const auto& [kb, triples] : order) {
    auto id = inc.Ingest(kb, *triples);
    EXPECT_TRUE(id.ok()) << id.status();
    delta.clear();
    index.AddEntity(inc.collection(), *id, delta);
    for (const DeltaPair& d : delta) {
      const bool inserted =
          emitted.insert(MakeIriPair(inc.collection(), d.a, d.b)).second;
      EXPECT_TRUE(inserted) << "pair emitted twice";
    }
  }
  return {std::move(inc), std::move(emitted)};
}

TEST(IncrementalBlockIndexTest, TokenParityWithBatchRebuild) {
  OnlineBlockingOptions blocking;
  blocking.token.max_df_fraction = 1.0;  // caps off: exact parity regime
  blocking.mode = ResolutionMode::kCleanClean;
  auto [inc, emitted] = IngestInterleaved(blocking);

  // Batch reference over a batch-built collection of the same data.
  EntityCollection batch;
  ASSERT_TRUE(batch.AddKnowledgeBase("kbA", Parse(kKbA)).ok());
  ASSERT_TRUE(batch.AddKnowledgeBase("kbB", Parse(kKbB)).ok());
  ASSERT_TRUE(batch.Finalize().ok());
  TokenBlocking::Options topts;
  topts.max_df_fraction = 1.0;
  const std::set<IriPair> expected =
      BatchPairs(batch, TokenBlocking(topts), ResolutionMode::kCleanClean);

  EXPECT_EQ(emitted, expected);
  EXPECT_FALSE(expected.empty());
  // Sanity: the crete/crete-island pair must be among them.
  EXPECT_TRUE(expected.count({"http://a.org/r/crete", "http://b.org/p/crete"}));
}

TEST(IncrementalBlockIndexTest, TokenPlusPisParityWithBatchRebuild) {
  OnlineBlockingOptions blocking;
  blocking.token.max_df_fraction = 1.0;
  blocking.use_pis_keys = true;
  blocking.pis.max_block_size = 1u << 20;  // cap off
  blocking.mode = ResolutionMode::kCleanClean;
  auto [inc, emitted] = IngestInterleaved(blocking);

  EntityCollection batch;
  ASSERT_TRUE(batch.AddKnowledgeBase("kbA", Parse(kKbA)).ok());
  ASSERT_TRUE(batch.AddKnowledgeBase("kbB", Parse(kKbB)).ok());
  ASSERT_TRUE(batch.Finalize().ok());
  TokenBlocking::Options topts;
  topts.max_df_fraction = 1.0;
  PisBlocking::Options popts;
  popts.max_block_size = 1u << 20;
  std::vector<std::unique_ptr<BlockingMethod>> methods;
  methods.push_back(std::make_unique<TokenBlocking>(topts));
  methods.push_back(std::make_unique<PisBlocking>(popts));
  const std::set<IriPair> expected =
      BatchPairs(batch, CompositeBlocking(std::move(methods)),
                 ResolutionMode::kCleanClean);

  EXPECT_EQ(emitted, expected);
  // PIS must contribute: heraklion/phaistos share IRI suffixes across KBs.
  EXPECT_TRUE(
      emitted.count({"http://a.org/r/phaistos", "http://b.org/p/phaistos"}));
}

TEST(IncrementalBlockIndexTest, GeneratedCloudParity) {
  // Realistic data: a small synthetic cloud ingested one entity at a time
  // must produce exactly the candidate set of a batch rebuild over the
  // final (incrementally built) collection.
  datagen::LodCloudConfig cfg;
  cfg.seed = 20260726;
  cfg.num_real_entities = 120;
  cfg.num_kbs = 3;
  cfg.center_kbs = 2;
  auto cloud = datagen::GenerateLodCloud(cfg);
  ASSERT_TRUE(cloud.ok());

  OnlineBlockingOptions blocking;
  blocking.token.max_df_fraction = 1.0;
  blocking.use_pis_keys = true;
  blocking.pis.max_block_size = 1u << 20;
  blocking.mode = ResolutionMode::kCleanClean;

  IncrementalCollection inc;
  IncrementalBlockIndex index(blocking);
  std::set<uint64_t> emitted;
  std::vector<DeltaPair> delta;
  for (const datagen::GeneratedKb& kb : cloud->kbs) {
    const uint32_t kb_id = inc.EnsureKb(kb.name);
    for (const auto& entity : GroupBySubject(kb.triples)) {
      auto id = inc.Ingest(kb_id, entity);
      ASSERT_TRUE(id.ok()) << id.status();
      delta.clear();
      index.AddEntity(inc.collection(), *id, delta);
      for (const DeltaPair& d : delta) {
        EXPECT_TRUE(emitted.insert(PairKey(d.a, d.b)).second);
      }
    }
  }

  TokenBlocking::Options topts;
  topts.max_df_fraction = 1.0;
  PisBlocking::Options popts;
  popts.max_block_size = 1u << 20;
  std::vector<std::unique_ptr<BlockingMethod>> methods;
  methods.push_back(std::make_unique<TokenBlocking>(topts));
  methods.push_back(std::make_unique<PisBlocking>(popts));
  BlockCollection blocks =
      CompositeBlocking(std::move(methods)).Build(inc.collection());
  std::set<uint64_t> expected;
  for (const Comparison& cmp : blocks.DistinctComparisons(
           inc.collection(), ResolutionMode::kCleanClean)) {
    expected.insert(PairKey(cmp.a, cmp.b));
  }

  EXPECT_GT(expected.size(), 100u);  // non-trivial candidate set
  EXPECT_EQ(emitted, expected);
}

TEST(IncrementalBlockIndexTest, CapWindowPairsRecoveredWhenCapLifts) {
  // The df cap is evaluated against the CURRENT collection size, so a
  // posting can be temporarily over-cap while the collection is small.
  // The watermark must recover the skipped pairs at the next live
  // insertion instead of losing them forever.
  OnlineBlockingOptions blocking;
  blocking.token.max_df_fraction = 0.5;
  blocking.mode = ResolutionMode::kCleanClean;

  IncrementalCollection inc;
  IncrementalBlockIndex index(blocking);
  const uint32_t kb0 = inc.EnsureKb("kb0");
  const uint32_t kb1 = inc.EnsureKb("kb1");

  // (kb, iri-suffix, value). "zeta" is the shared token; at insertions 2
  // and 5 the collection is small enough that cap < posting size, so those
  // arrivals emit nothing; insertion 9 is within cap and must catch up.
  const std::vector<std::tuple<uint32_t, std::string, std::string>> feed = {
      {kb0, "a0", "zeta alpha0"}, {kb1, "b0", "zeta beta0"},
      {kb0, "a1", "filler1"},     {kb1, "b1", "filler2"},
      {kb1, "b2", "zeta gamma0"}, {kb0, "a2", "filler3"},
      {kb1, "b3", "filler4"},     {kb0, "a3", "filler5"},
      {kb0, "a4", "zeta delta0"},
  };

  std::set<IriPair> emitted;
  std::vector<DeltaPair> delta;
  for (const auto& [kb, suffix, value] : feed) {
    const std::string doc = "<http://" + std::to_string(kb) + ".org/" +
                            suffix + "> <http://v/p> \"" + value + "\" .\n";
    auto id = inc.Ingest(kb, Parse(doc));
    ASSERT_TRUE(id.ok()) << id.status();
    delta.clear();
    index.AddEntity(inc.collection(), *id, delta);
    for (const DeltaPair& d : delta) {
      emitted.insert(MakeIriPair(inc.collection(), d.a, d.b));
    }
  }

  // All four cross-KB "zeta" pairs, including the ones whose arrivals fell
  // inside the capped window.
  const std::set<IriPair> expected = {
      {"http://0.org/a0", "http://1.org/b0"},
      {"http://0.org/a0", "http://1.org/b2"},
      {"http://0.org/a4", "http://1.org/b0"},
      {"http://0.org/a4", "http://1.org/b2"},
  };
  EXPECT_EQ(emitted, expected);
}

// ---------------------------------------------------------------------------
// OnlineResolver: resumable budgets, Query, seeds
// ---------------------------------------------------------------------------

datagen::LodCloud SmallCloud() {
  datagen::LodCloudConfig cfg;
  cfg.seed = 99;
  cfg.num_real_entities = 100;
  cfg.num_kbs = 3;
  cfg.center_kbs = 2;
  auto cloud = datagen::GenerateLodCloud(cfg);
  EXPECT_TRUE(cloud.ok());
  return std::move(cloud).value();
}

void IngestCloud(OnlineResolver& resolver, const datagen::LodCloud& cloud) {
  for (const datagen::GeneratedKb& kb : cloud.kbs) {
    const uint32_t kb_id = resolver.EnsureKb(kb.name);
    for (const auto& entity : GroupBySubject(kb.triples)) {
      ASSERT_TRUE(resolver.Ingest(kb_id, entity).ok());
    }
  }
}

TEST(OnlineResolverTest, ResumableBudgets) {
  const datagen::LodCloud cloud = SmallCloud();
  OnlineOptions options;
  options.matcher.threshold = 0.3;

  OnlineResolver split(options);
  IngestCloud(split, cloud);
  const OnlineStepResult s1 = split.ResolveBudget(40);
  const OnlineStepResult s2 = split.ResolveBudget(40);
  EXPECT_EQ(s1.comparisons, 40u);
  EXPECT_EQ(s2.comparisons, 40u);

  OnlineResolver whole(options);
  IngestCloud(whole, cloud);
  const OnlineStepResult w = whole.ResolveBudget(80);
  EXPECT_EQ(w.comparisons, 80u);

  // Split and whole schedules must be identical, match for match.
  ASSERT_EQ(s1.matches.size() + s2.matches.size(), w.matches.size());
  std::vector<MatchEvent> split_matches = s1.matches;
  split_matches.insert(split_matches.end(), s2.matches.begin(),
                       s2.matches.end());
  for (size_t i = 0; i < w.matches.size(); ++i) {
    EXPECT_EQ(split_matches[i].a, w.matches[i].a);
    EXPECT_EQ(split_matches[i].b, w.matches[i].b);
    EXPECT_EQ(split_matches[i].comparisons_done, w.matches[i].comparisons_done);
    EXPECT_DOUBLE_EQ(split_matches[i].similarity, w.matches[i].similarity);
  }
  EXPECT_EQ(split.run().comparisons_executed, whole.run().comparisons_executed);
}

TEST(OnlineResolverTest, BudgetExhaustionReported) {
  const datagen::LodCloud cloud = SmallCloud();
  OnlineResolver resolver{OnlineOptions{}};
  IngestCloud(resolver, cloud);
  const OnlineStepResult all = resolver.ResolveBudget(1u << 30);
  EXPECT_TRUE(all.exhausted);
  EXPECT_GT(all.comparisons, 0u);
  EXPECT_EQ(resolver.pending_comparisons(), 0u);
  // Nothing left: further budgets are free.
  const OnlineStepResult more = resolver.ResolveBudget(10);
  EXPECT_TRUE(more.exhausted);
  EXPECT_EQ(more.comparisons, 0u);
}

TEST(OnlineResolverTest, QueryDeterministicAndIdempotent) {
  const datagen::LodCloud cloud = SmallCloud();
  OnlineOptions options;
  options.matcher.threshold = 0.3;
  OnlineResolver resolver(options);
  IngestCloud(resolver, cloud);

  // Pick an entity with candidates.
  EntityId probe = kInvalidEntity;
  for (EntityId e = 0; e < resolver.collection().num_entities(); ++e) {
    if (!resolver.Query(e, 1).empty()) {
      probe = e;
      break;
    }
  }
  ASSERT_NE(probe, kInvalidEntity);

  const auto first = resolver.Query(probe, 5);
  const auto second = resolver.Query(probe, 5);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].id, second[i].id);
    EXPECT_DOUBLE_EQ(first[i].similarity, second[i].similarity);
    EXPECT_EQ(first[i].matched, second[i].matched);
  }
  // Ranked by similarity, ties by id.
  for (size_t i = 1; i < first.size(); ++i) {
    EXPECT_GE(first[i - 1].similarity, first[i].similarity);
  }
  // Query executed the probe's pending comparisons.
  EXPECT_GT(resolver.run().comparisons_executed, 0u);
}

TEST(OnlineResolverTest, QueryAgreesWithResolution) {
  const datagen::LodCloud cloud = SmallCloud();
  OnlineOptions options;
  options.matcher.threshold = 0.3;
  OnlineResolver resolver(options);
  IngestCloud(resolver, cloud);
  resolver.ResolveBudget(1u << 30);

  // After full resolution, every match partner shows up as `matched` in the
  // partner's query results (clusters are transitive, so check SameCluster).
  ASSERT_FALSE(resolver.run().matches.empty());
  const MatchEvent m = resolver.run().matches.front();
  const auto candidates = resolver.Query(m.a, 1000);
  bool found = false;
  for (const QueryCandidate& c : candidates) {
    if (c.id == m.b) {
      found = true;
      EXPECT_TRUE(c.matched);
    }
  }
  EXPECT_TRUE(found);
}

TEST(OnlineResolverTest, SameAsSeedsResolveAtZeroCost) {
  OnlineOptions options;
  options.use_same_as_seeds = true;
  OnlineResolver resolver(options);
  const uint32_t kb_b = resolver.EnsureKb("kbB");
  for (const auto& entity : GroupBySubject(Parse(kKbB))) {
    ASSERT_TRUE(resolver.Ingest(kb_b, entity).ok());
  }
  const uint32_t kb_a = resolver.EnsureKb("kbA");
  for (const auto& entity : GroupBySubject(Parse(kKbA))) {
    ASSERT_TRUE(resolver.Ingest(kb_a, entity).ok());
  }
  const EntityId a = resolver.collection().FindByIri("http://a.org/r/heraklion");
  const EntityId b = resolver.collection().FindByIri("http://b.org/p/heraklion");
  ASSERT_NE(a, kInvalidEntity);
  ASSERT_NE(b, kInvalidEntity);
  EXPECT_TRUE(resolver.state().SameCluster(a, b));
  EXPECT_EQ(resolver.run().comparisons_executed, 0u);
}

TEST(OnlineResolverTest, DynamicNeighborsFeedRelationshipBenefit) {
  // Without a frozen NeighborGraph, ResolutionState must read neighbors
  // from the growable adjacency so relationship-aware benefit models work
  // online.
  const char* kb0_doc = R"(
<http://x/na> <http://v/name> "north annex" .
<http://x/a> <http://v/name> "alpha core" .
<http://x/a> <http://v/near> <http://x/na> .
)";
  const char* kb1_doc = R"(
<http://y/nb> <http://v/label> "north annex two" .
<http://y/b> <http://v/label> "alpha kernel" .
<http://y/b> <http://v/near> <http://y/nb> .
)";
  IncrementalCollection inc;
  const uint32_t kb0 = inc.EnsureKb("kb0");
  for (const auto& e : GroupBySubject(Parse(kb0_doc))) {
    ASSERT_TRUE(inc.Ingest(kb0, e).ok());
  }
  const uint32_t kb1 = inc.EnsureKb("kb1");
  for (const auto& e : GroupBySubject(Parse(kb1_doc))) {
    ASSERT_TRUE(inc.Ingest(kb1, e).ok());
  }
  const EntityId a = inc.collection().FindByIri("http://x/a");
  const EntityId na = inc.collection().FindByIri("http://x/na");
  const EntityId b = inc.collection().FindByIri("http://y/b");
  const EntityId nb = inc.collection().FindByIri("http://y/nb");

  ResolutionState state(inc.collection(), nullptr);
  std::vector<std::vector<EntityId>> adjacency(inc.num_entities());
  adjacency[a].push_back(na);
  adjacency[na].push_back(a);
  adjacency[b].push_back(nb);
  adjacency[nb].push_back(b);
  state.SetDynamicNeighbors(&adjacency);

  EXPECT_DOUBLE_EQ(state.MatchedNeighborFraction(a, b, 16), 0.0);
  state.RecordMatch(na, nb);
  EXPECT_DOUBLE_EQ(state.MatchedNeighborFraction(a, b, 16), 1.0);
  EXPECT_EQ(state.MatchedNeighborPairs(a, b, 16), 1u);
}

TEST(OnlineResolverTest, WarmStartReproducesBatchCandidateSet) {
  const datagen::LodCloud cloud = SmallCloud();
  auto batch = cloud.BuildCollection();
  ASSERT_TRUE(batch.ok());

  // Batch reference over the same collection the warm engine adopts. Caps
  // off — the incremental df cap is evaluated against the collection size
  // at each insertion, not the final size.
  TokenBlocking::Options topts;
  topts.max_df_fraction = 1.0;
  BlockCollection blocks = TokenBlocking(topts).Build(*batch);
  const size_t expected =
      blocks.DistinctComparisons(*batch, ResolutionMode::kCleanClean).size();

  OnlineOptions options;
  options.matcher.threshold = 0.3;
  options.blocking.token.max_df_fraction = 1.0;
  OnlineResolver warm(options, std::move(batch).value());

  EXPECT_GT(expected, 0u);
  EXPECT_EQ(warm.candidate_pairs_created(), expected);
  EXPECT_EQ(warm.pending_comparisons(), expected);

  // Cold entity-at-a-time ingestion classifies forward intra-KB references
  // as attribute tokens (documented append-only semantics), so its
  // candidate set is a superset of the batch one.
  OnlineResolver cold(options);
  IngestCloud(cold, cloud);
  EXPECT_EQ(cold.collection().num_entities(), warm.collection().num_entities());
  EXPECT_GE(cold.candidate_pairs_created(), expected);
}

// ---------------------------------------------------------------------------
// OnlineResolver checkpoint / restore (mirrors session_test.cc)
// ---------------------------------------------------------------------------

EntityCollection WarmCollection(const datagen::LodCloud& cloud) {
  auto collection = cloud.BuildCollection();
  EXPECT_TRUE(collection.ok());
  return std::move(collection).value();
}

void ExpectSameMatches(const std::vector<MatchEvent>& a,
                       const std::vector<MatchEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].a, b[i].a) << "match " << i;
    EXPECT_EQ(a[i].b, b[i].b) << "match " << i;
    EXPECT_EQ(a[i].comparisons_done, b[i].comparisons_done) << "match " << i;
    EXPECT_EQ(std::memcmp(&a[i].similarity, &b[i].similarity,
                          sizeof(double)),
              0)
        << "match " << i << " similarity bits differ";
  }
}

TEST(OnlineResolverTest, SaveRestoreContinuesByteIdentically) {
  const datagen::LodCloud cloud = SmallCloud();
  OnlineOptions options;
  options.matcher.threshold = 0.3;

  // Uninterrupted reference run.
  OnlineResolver whole(options, WarmCollection(cloud));
  whole.ResolveBudget(300);
  whole.ResolveBudget(1u << 30);
  ASSERT_GT(whole.run().matches.size(), 0u);

  // Interrupted run: 300 comparisons, save, restore in a "new process",
  // finish. The full match sequence must carry identical bytes.
  OnlineResolver first(options, WarmCollection(cloud));
  first.ResolveBudget(300);
  std::stringstream state;
  ASSERT_TRUE(first.SaveState(state).ok());

  auto restored =
      OnlineResolver::Restore(options, WarmCollection(cloud), state);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ((*restored)->run().comparisons_executed, 300u);
  EXPECT_EQ((*restored)->pending_comparisons(),
            first.pending_comparisons());
  (*restored)->ResolveBudget(1u << 30);

  ExpectSameMatches(whole.run().matches, (*restored)->run().matches);
  EXPECT_EQ(whole.run().comparisons_executed,
            (*restored)->run().comparisons_executed);
  EXPECT_EQ(whole.discovered_pairs(), (*restored)->discovered_pairs());
  EXPECT_EQ(whole.evidence_assisted_matches(),
            (*restored)->evidence_assisted_matches());
}

TEST(OnlineResolverTest, RestoreSupportsIngestAndQuery) {
  const datagen::LodCloud cloud = SmallCloud();
  OnlineOptions options;
  options.matcher.threshold = 0.3;
  const std::vector<Triple> extra = Parse(
      "<http://x.org/new> <http://x.org/v/name> \"Knossos bronze palace\" "
      ".\n");

  // Reference: never interrupted; ingest mid-run.
  OnlineResolver whole(options, WarmCollection(cloud));
  whole.ResolveBudget(200);
  const uint32_t whole_kb = whole.EnsureKb("extra");
  ASSERT_TRUE(whole.Ingest(whole_kb, extra).ok());
  whole.ResolveBudget(1u << 30);

  // Interrupted at the same point, then the same ingest after restore.
  OnlineResolver first(options, WarmCollection(cloud));
  first.ResolveBudget(200);
  std::stringstream state;
  ASSERT_TRUE(first.SaveState(state).ok());
  auto restored =
      OnlineResolver::Restore(options, WarmCollection(cloud), state);
  ASSERT_TRUE(restored.ok()) << restored.status();
  const uint32_t restored_kb = (*restored)->EnsureKb("extra");
  auto id = (*restored)->Ingest(restored_kb, extra);
  ASSERT_TRUE(id.ok());
  (*restored)->ResolveBudget(1u << 30);

  ExpectSameMatches(whole.run().matches, (*restored)->run().matches);

  // Query over the restored engine matches the uninterrupted one.
  const auto whole_q = whole.Query(*id, 5);
  const auto restored_q = (*restored)->Query(*id, 5);
  ASSERT_EQ(whole_q.size(), restored_q.size());
  for (size_t i = 0; i < whole_q.size(); ++i) {
    EXPECT_EQ(whole_q[i].id, restored_q[i].id);
    EXPECT_EQ(std::memcmp(&whole_q[i].similarity, &restored_q[i].similarity,
                          sizeof(double)),
              0);
    EXPECT_EQ(whole_q[i].matched, restored_q[i].matched);
  }
}

TEST(OnlineResolverTest, RestorePreservesSameAsSeedCursor) {
  const datagen::LodCloud cloud = SmallCloud();
  OnlineOptions options;
  options.matcher.threshold = 0.3;
  options.use_same_as_seeds = true;

  OnlineResolver whole(options, WarmCollection(cloud));
  whole.ResolveBudget(1u << 30);

  OnlineResolver first(options, WarmCollection(cloud));
  first.ResolveBudget(150);
  std::stringstream state;
  ASSERT_TRUE(first.SaveState(state).ok());
  auto restored =
      OnlineResolver::Restore(options, WarmCollection(cloud), state);
  ASSERT_TRUE(restored.ok()) << restored.status();
  (*restored)->ResolveBudget(1u << 30);
  ExpectSameMatches(whole.run().matches, (*restored)->run().matches);
}

TEST(OnlineResolverTest, RestoreRejectsMismatchesAndTruncation) {
  const datagen::LodCloud cloud = SmallCloud();
  OnlineOptions options;
  options.matcher.threshold = 0.3;
  OnlineResolver engine(options, WarmCollection(cloud));
  engine.ResolveBudget(100);
  std::stringstream state;
  ASSERT_TRUE(engine.SaveState(state).ok());
  const std::string bytes = state.str();

  // Different collection.
  datagen::LodCloudConfig other_cfg;
  other_cfg.seed = 7;
  other_cfg.num_real_entities = 60;
  other_cfg.num_kbs = 2;
  auto other_cloud = datagen::GenerateLodCloud(other_cfg);
  ASSERT_TRUE(other_cloud.ok());
  {
    std::istringstream in(bytes);
    auto restored =
        OnlineResolver::Restore(options, WarmCollection(*other_cloud), in);
    EXPECT_FALSE(restored.ok());
  }
  // Different options.
  {
    OnlineOptions other = options;
    other.matcher.threshold = 0.6;
    std::istringstream in(bytes);
    auto restored = OnlineResolver::Restore(other, WarmCollection(cloud), in);
    EXPECT_FALSE(restored.ok());
  }
  // Truncations anywhere in the stream must be rejected, never crash.
  for (const double fraction : {0.1, 0.5, 0.9, 0.999}) {
    std::istringstream in(
        bytes.substr(0, static_cast<size_t>(bytes.size() * fraction)));
    auto restored = OnlineResolver::Restore(options, WarmCollection(cloud),
                                            in);
    EXPECT_FALSE(restored.ok()) << "fraction " << fraction;
  }
}

// ---------------------------------------------------------------------------
// OnlineSession script replay
// ---------------------------------------------------------------------------

TEST(OnlineSessionTest, ScriptReplayIsDeterministic) {
  const datagen::LodCloud cloud = SmallCloud();
  const std::string script_text =
      "# replayed twice, byte-identical output expected\n"
      "ingest " + cloud.kbs[0].name + " 20\n"
      "ingest " + cloud.kbs[1].name + " all\n"
      "resolve 50\n"
      "stats\n"
      "ingest * all\n"
      "resolve 100\n"
      "stats\n";

  auto run_once = [&]() {
    online::OnlineOptions options;
    options.matcher.threshold = 0.3;
    OnlineSession session(options);
    for (const datagen::GeneratedKb& kb : cloud.kbs) {
      EXPECT_TRUE(session.AddSource(kb.name, kb.triples).ok());
    }
    std::istringstream in(script_text);
    std::ostringstream out;
    EXPECT_TRUE(session.RunScript(in, out).ok());
    return out.str();
  };

  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // The interleaving actually resolved something.
  EXPECT_NE(first.find("matches"), std::string::npos);
}

TEST(OnlineSessionTest, UnknownCommandsAndSourcesAreErrors) {
  OnlineSession session;
  std::istringstream bad_cmd("frobnicate 3\n");
  std::ostringstream out;
  EXPECT_FALSE(session.RunScript(bad_cmd, out).ok());
  std::istringstream bad_src("ingest nosuch 1\n");
  EXPECT_FALSE(session.RunScript(bad_src, out).ok());
  // Malformed numbers are Status errors, never exceptions.
  std::istringstream bad_num("resolve ten\n");
  EXPECT_FALSE(session.RunScript(bad_num, out).ok());
  std::istringstream neg_num("resolve -5\n");
  EXPECT_FALSE(session.RunScript(neg_num, out).ok());
}

}  // namespace
}  // namespace minoan
