// Out-of-core suite: the compressed run codec (round trips plus hostile
// truncation / bit-flip fuzzing — run under ASan in CI), cascaded run
// merges at small fan-ins, mid-merge failure cleanup, the streaming
// postings path, and the full budgeted pipeline parity matrix: every
// blocker × {CEP, WEP} under a forced tiny memory budget must produce
// byte-identical matches and checkpoints to the unbudgeted run, at 1 and 4
// threads.

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "blocking/sharded_blocking.h"
#include "core/session.h"
#include "datagen/lod_generator.h"
#include "extmem/memory_budget.h"
#include "extmem/run_codec.h"
#include "extmem/shuffle.h"
#include "extmem/spill_file.h"
#include "gtest/gtest.h"
#include "util/serde.h"
#include "util/thread_pool.h"

namespace minoan {
namespace {

namespace fs = std::filesystem;

/// A fresh directory under the system temp dir that the test removes; any
/// entry still present at assertion time is a leaked spill artifact.
class TempBase {
 public:
  explicit TempBase(const char* tag) {
    path_ = fs::temp_directory_path() /
            (std::string("minoan-ooc-test-") + tag);
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempBase() { fs::remove_all(path_); }

  std::string str() const { return path_.string(); }

  size_t NumEntries() const {
    size_t n = 0;
    for ([[maybe_unused]] const auto& entry : fs::directory_iterator(path_)) {
      ++n;
    }
    return n;
  }

 private:
  fs::path path_;
};

/// Builds a shuffle record ([u32 LE key_len][key][payload]) from a string
/// key and arbitrary payload bytes.
std::string StringRecord(const std::string& key, const std::string& payload) {
  std::string record;
  extmem::EncodeKey(key, record);
  record.append(payload);
  return record;
}

std::string U32Record(uint32_t key, uint32_t payload) {
  std::string record;
  extmem::EncodeKey(key, record);
  extmem::AppendU32Le(record, payload);
  return record;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void WriteFileBytes(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------------------
// Compressed run codec
// ---------------------------------------------------------------------------

TEST(RunCodecTest, VarintRoundTripsEdgeValues) {
  const std::vector<uint64_t> values = {
      0,     1,          127,        128,        255,       16383,
      16384, 1u << 20,   0xffffffffu, (1ull << 32), UINT64_MAX};
  std::string buf;
  for (const uint64_t v : values) extmem::PutVarint(buf, v);
  size_t pos = 0;
  for (const uint64_t expected : values) {
    uint64_t v = 0;
    ASSERT_TRUE(extmem::GetVarint(buf, pos, v));
    EXPECT_EQ(v, expected);
  }
  EXPECT_EQ(pos, buf.size());

  // Truncation: drop the terminating byte of the last (10-byte) varint.
  std::string cut;
  extmem::PutVarint(cut, UINT64_MAX);
  cut.pop_back();
  pos = 0;
  uint64_t v = 0;
  EXPECT_FALSE(extmem::GetVarint(cut, pos, v));

  // Overlong: eleven continuation bytes never terminate a valid varint.
  const std::string overlong(11, static_cast<char>(0x80));
  pos = 0;
  EXPECT_FALSE(extmem::GetVarint(overlong, pos, v));
}

std::vector<std::string> CodecSampleRecords() {
  std::vector<std::string> records;
  // Long shared prefixes (the front-coding sweet spot), interleaved with
  // empty keys, empty payloads, and binary payload bytes.
  records.push_back(StringRecord("", "empty key"));
  records.push_back(StringRecord("", ""));
  for (int i = 0; i < 40; ++i) {
    char key[32];
    std::snprintf(key, sizeof(key), "entity/block/%05d", i);
    std::string payload;
    extmem::AppendU32Le(payload, static_cast<uint32_t>(i));
    if (i % 3 == 0) payload.append(std::string(i, '\0'));
    records.push_back(StringRecord(key, payload));
  }
  records.push_back(StringRecord(std::string(2000, 'k'), "big key"));
  records.push_back(
      StringRecord(std::string(2000, 'k') + "tail", "shares 2000 bytes"));
  return records;
}

TEST(RunCodecTest, RoundTripsFrontCodedRecords) {
  TempBase base("codec");
  const std::string path = base.str() + "/run-0.spill";
  const std::vector<std::string> records = CodecSampleRecords();
  uint64_t compressed = 0;
  {
    extmem::CompressedRunWriter writer(path);
    for (const std::string& r : records) writer.Append(r);
    EXPECT_EQ(writer.records(), records.size());
    compressed = writer.Close();
  }
  // Front coding must actually compress the shared-prefix records.
  uint64_t raw = 0;
  for (const std::string& r : records) raw += r.size();
  EXPECT_LT(compressed, raw);

  extmem::CompressedRunReader reader(path);
  std::string_view record;
  for (const std::string& expected : records) {
    ASSERT_TRUE(reader.Next(record));
    EXPECT_EQ(record, expected);
  }
  EXPECT_FALSE(reader.Next(record));
}

TEST(RunCodecTest, RoundTripsUnsortedRecords) {
  // Sorted order is a compression hint, not a correctness requirement.
  TempBase base("codec-unsorted");
  const std::string path = base.str() + "/run-0.spill";
  const std::vector<std::string> records = {
      StringRecord("zebra", "1"), StringRecord("apple", "2"),
      StringRecord("zeb", "3"), StringRecord("", "4")};
  {
    extmem::CompressedRunWriter writer(path);
    for (const std::string& r : records) writer.Append(r);
    writer.Close();
  }
  extmem::CompressedRunReader reader(path);
  std::string_view record;
  for (const std::string& expected : records) {
    ASSERT_TRUE(reader.Next(record));
    EXPECT_EQ(record, expected);
  }
  EXPECT_FALSE(reader.Next(record));
}

TEST(RunCodecTest, BadMagicThrows) {
  TempBase base("codec-magic");
  const std::string path = base.str() + "/run-0.spill";
  WriteFileBytes(path, "NOTARUN!rest of the file");
  EXPECT_THROW(extmem::CompressedRunReader reader(path), extmem::SpillError);
  WriteFileBytes(path, "MNR");  // shorter than the magic
  EXPECT_THROW(extmem::CompressedRunReader reader(path), extmem::SpillError);
}

/// Reads every record of a (possibly corrupt) compressed run, returning the
/// count. Throwing SpillError is a legal outcome for the caller to catch;
/// anything else (crash, hang, unbounded allocation) fails the test by
/// sanitizer or timeout.
size_t DrainRun(const std::string& path) {
  extmem::CompressedRunReader reader(path);
  std::string_view record;
  size_t n = 0;
  while (reader.Next(record)) ++n;
  return n;
}

TEST(RunCodecTest, TruncationFuzzNeverCrashes) {
  TempBase base("codec-trunc");
  const std::string full_path = base.str() + "/full.spill";
  const std::vector<std::string> records = CodecSampleRecords();
  {
    extmem::CompressedRunWriter writer(full_path);
    for (const std::string& r : records) writer.Append(r);
    writer.Close();
  }
  const std::string bytes = ReadFileBytes(full_path);
  ASSERT_GT(bytes.size(), extmem::kRunMagic.size());

  const std::string cut_path = base.str() + "/cut.spill";
  // EVERY prefix of the file: the reader must return at most the records
  // the prefix fully contains, or throw SpillError — never crash.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    WriteFileBytes(cut_path, std::string_view(bytes).substr(0, cut));
    try {
      const size_t n = DrainRun(cut_path);
      EXPECT_LE(n, records.size()) << "cut at " << cut;
    } catch (const extmem::SpillError&) {
      // Expected for most cut points.
    }
  }
}

TEST(RunCodecTest, BitFlipFuzzNeverCrashes) {
  TempBase base("codec-flip");
  const std::string full_path = base.str() + "/full.spill";
  const std::vector<std::string> records = CodecSampleRecords();
  {
    extmem::CompressedRunWriter writer(full_path);
    for (const std::string& r : records) writer.Append(r);
    writer.Close();
  }
  const std::string bytes = ReadFileBytes(full_path);
  const std::string flip_path = base.str() + "/flip.spill";

  // Deterministic bit positions (golden-ratio stride covers the file
  // uniformly). A flip may decode to different-but-valid records — only
  // boundedness matters: each parsed record consumes at least one header
  // byte, so the count can never exceed the file size.
  for (size_t i = 0; i < 400; ++i) {
    const size_t bit = (i * 2654435761u) % (bytes.size() * 8);
    std::string flipped = bytes;
    flipped[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    WriteFileBytes(flip_path, flipped);
    try {
      const size_t n = DrainRun(flip_path);
      EXPECT_LE(n, bytes.size()) << "flip at bit " << bit;
    } catch (const extmem::SpillError&) {
      // Expected for flips that land in a length or the magic.
    }
  }
}

// ---------------------------------------------------------------------------
// Cascaded run merges
// ---------------------------------------------------------------------------

TEST(CascadeMergeTest, ParityAtSmallFanIns) {
  const auto arrival = [](size_t i) {
    return static_cast<uint32_t>((i * 2654435761u) % 97);
  };
  constexpr size_t kRecords = 3000;

  extmem::SpillShuffle reference(/*run_bytes=*/0, nullptr);
  for (size_t i = 0; i < kRecords; ++i) {
    reference.Add(U32Record(arrival(i), static_cast<uint32_t>(i)));
  }
  auto ref_source = reference.Finish();
  std::vector<std::string> expected;
  {
    std::string_view record;
    while (ref_source->Next(record)) expected.emplace_back(record);
  }
  ASSERT_EQ(expected.size(), kRecords);

  for (const uint32_t fanin : {2u, 3u, 7u}) {
    TempBase base("cascade");
    extmem::ScopedSpillDir dir(base.str());
    extmem::ResetSpillTelemetry();
    extmem::SpillShuffle spilled(/*run_bytes=*/256, &dir, fanin);
    for (size_t i = 0; i < kRecords; ++i) {
      spilled.Add(U32Record(arrival(i), static_cast<uint32_t>(i)));
    }
    ASSERT_GT(spilled.runs_spilled(), fanin)
        << "fan-in " << fanin << ": budget did not force a cascade";
    auto source = spilled.Finish();
    std::string_view record;
    size_t count = 0;
    while (source->Next(record)) {
      ASSERT_LT(count, expected.size());
      ASSERT_EQ(record, expected[count])
          << "fan-in " << fanin << " diverges at record " << count;
      ++count;
    }
    EXPECT_EQ(count, kRecords) << "fan-in " << fanin;
    EXPECT_GT(extmem::GetSpillTelemetry().cascade_merges, 0u)
        << "fan-in " << fanin << " never cascaded";
  }
}

TEST(CascadeMergeTest, FailedMergeRemovesPartialOutput) {
  TempBase base("cascade-fail");
  size_t files_before_finish = 0;
  {
    extmem::ScopedSpillDir dir(base.str());
    extmem::SpillShuffle sink(/*run_bytes=*/256, &dir, /*max_merge_fanin=*/2);
    for (size_t i = 0; i < 3000; ++i) {
      sink.Add(U32Record(static_cast<uint32_t>(i % 97),
                         static_cast<uint32_t>(i)));
    }
    ASSERT_GE(sink.runs_spilled(), 3u);

    // Corrupt the TAIL of the first run: the magic and the leading records
    // stay valid, so the merge primes cleanly, creates its output file, and
    // only then hits the truncation — exercising the partial-output removal
    // path (not the pre-writer priming throw).
    const std::string run0 = (dir.path() / "run-0.spill").string();
    ASSERT_TRUE(fs::exists(run0));
    fs::resize_file(run0, fs::file_size(run0) - 3);

    for ([[maybe_unused]] const auto& e : fs::directory_iterator(dir.path())) {
      ++files_before_finish;
    }
    EXPECT_THROW(sink.Finish(), extmem::SpillError);

    // No partially written merge output may survive the throw; the inputs
    // of the failed merge are still there (the dir removes them wholesale).
    size_t files_after = 0;
    for ([[maybe_unused]] const auto& e : fs::directory_iterator(dir.path())) {
      ++files_after;
    }
    EXPECT_EQ(files_after, files_before_finish)
        << "failed cascade merge left a partial output run behind";
  }
  EXPECT_EQ(base.NumEntries(), 0u) << "spill dir leaked after failed merge";
}

// ---------------------------------------------------------------------------
// Streaming postings
// ---------------------------------------------------------------------------

TEST(StreamingPostingsTest, MatchesMaterializedPostings) {
  constexpr uint32_t kEntities = 1500;
  const auto emit = [](EntityId e, std::vector<uint32_t>& keys) {
    keys.push_back(e % 97);
    keys.push_back((e * 7) % 61 + 1000);
    if (e % 5 == 0) keys.push_back(e % 97);  // duplicate emission preserved
  };
  const auto hash = [](uint32_t key) { return static_cast<uint64_t>(key); };

  const std::vector<KeyedPosting<uint32_t>> reference =
      BuildShardedPostings<uint32_t>(kEntities, nullptr, emit, hash);
  ASSERT_GT(reference.size(), 0u);

  TempBase base("stream-postings");
  extmem::MemoryBudgetOptions memory;
  memory.shuffle_budget_bytes = 16 << 10;
  memory.spill_dir = base.str();

  for (const uint32_t threads : {1u, 4u}) {
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
    size_t i = 0;
    StreamShardedPostings<uint32_t>(
        kEntities, pool.get(), emit, hash, memory,
        [&](uint32_t key, std::vector<EntityId>& entities) {
          ASSERT_LT(i, reference.size());
          EXPECT_EQ(key, reference[i].key) << "posting " << i;
          EXPECT_EQ(entities, reference[i].entities)
              << "posting " << i << " at " << threads << " threads";
          ++i;
        });
    EXPECT_EQ(i, reference.size()) << threads << " threads";
  }
  EXPECT_EQ(base.NumEntries(), 0u) << "streaming postings leaked spill files";
}

// ---------------------------------------------------------------------------
// Budgeted pipeline parity matrix
// ---------------------------------------------------------------------------

/// A parsed "MNER-SESS-v1" checkpoint with the wall-time fields (phase
/// millis, resolve millis) dropped — those are legitimately nondeterministic;
/// everything else, including the raw resolver-state tail bytes, must be
/// byte-identical between a budgeted and an unbudgeted run.
struct ParsedCheckpoint {
  std::string magic;
  uint32_t num_entities = 0;
  uint32_t num_kbs = 0;
  uint64_t total_triples = 0;
  uint64_t options_digest = 0;
  uint64_t blocks_built = 0;
  uint64_t blocks_after_cleaning = 0;
  uint64_t comparisons_before_meta = 0;
  uint64_t comparisons_after_meta = 0;
  uint64_t graph_edges = 0;
  uint64_t retained_edges = 0;
  double mean_weight = 0.0;
  uint64_t nominations = 0;
  uint64_t distinct_pairs = 0;
  std::vector<std::pair<std::string, uint64_t>> phases;  // (name, cardinality)
  std::string resolver_tail;
};

ParsedCheckpoint ParseCheckpoint(const std::string& bytes) {
  ParsedCheckpoint p;
  std::istringstream in(bytes);
  EXPECT_TRUE(serde::ReadString(in, p.magic));
  EXPECT_TRUE(serde::ReadU32(in, p.num_entities));
  EXPECT_TRUE(serde::ReadU32(in, p.num_kbs));
  EXPECT_TRUE(serde::ReadU64(in, p.total_triples));
  EXPECT_TRUE(serde::ReadU64(in, p.options_digest));
  EXPECT_TRUE(serde::ReadU64(in, p.blocks_built));
  EXPECT_TRUE(serde::ReadU64(in, p.blocks_after_cleaning));
  EXPECT_TRUE(serde::ReadU64(in, p.comparisons_before_meta));
  EXPECT_TRUE(serde::ReadU64(in, p.comparisons_after_meta));
  EXPECT_TRUE(serde::ReadU64(in, p.graph_edges));
  EXPECT_TRUE(serde::ReadU64(in, p.retained_edges));
  EXPECT_TRUE(serde::ReadDouble(in, p.mean_weight));
  EXPECT_TRUE(serde::ReadU64(in, p.nominations));
  EXPECT_TRUE(serde::ReadU64(in, p.distinct_pairs));
  uint64_t n_phases = 0;
  EXPECT_TRUE(serde::ReadU64(in, n_phases));
  for (uint64_t i = 0; i < n_phases; ++i) {
    std::string name;
    double millis = 0.0;
    uint64_t cardinality = 0;
    EXPECT_TRUE(serde::ReadString(in, name));
    EXPECT_TRUE(serde::ReadDouble(in, millis));  // wall time: dropped
    EXPECT_TRUE(serde::ReadU64(in, cardinality));
    p.phases.emplace_back(std::move(name), cardinality);
  }
  double resolve_millis = 0.0;
  EXPECT_TRUE(serde::ReadDouble(in, resolve_millis));  // wall time: dropped
  std::ostringstream tail;
  tail << in.rdbuf();
  p.resolver_tail = tail.str();
  return p;
}

void ExpectCheckpointsMatch(const ParsedCheckpoint& ref,
                            const ParsedCheckpoint& got,
                            const std::string& label) {
  EXPECT_EQ(ref.magic, got.magic) << label;
  EXPECT_EQ(ref.num_entities, got.num_entities) << label;
  EXPECT_EQ(ref.num_kbs, got.num_kbs) << label;
  EXPECT_EQ(ref.total_triples, got.total_triples) << label;
  EXPECT_EQ(ref.options_digest, got.options_digest)
      << label << ": the memory budget must not enter the options digest";
  EXPECT_EQ(ref.blocks_built, got.blocks_built) << label;
  EXPECT_EQ(ref.blocks_after_cleaning, got.blocks_after_cleaning) << label;
  EXPECT_EQ(ref.comparisons_before_meta, got.comparisons_before_meta)
      << label;
  EXPECT_EQ(ref.comparisons_after_meta, got.comparisons_after_meta) << label;
  EXPECT_EQ(ref.graph_edges, got.graph_edges) << label;
  EXPECT_EQ(ref.retained_edges, got.retained_edges) << label;
  EXPECT_EQ(std::memcmp(&ref.mean_weight, &got.mean_weight, sizeof(double)),
            0)
      << label << ": mean weight bits differ";
  EXPECT_EQ(ref.nominations, got.nominations) << label;
  EXPECT_EQ(ref.distinct_pairs, got.distinct_pairs) << label;
  EXPECT_EQ(ref.phases, got.phases) << label;
  EXPECT_EQ(ref.resolver_tail, got.resolver_tail)
      << label << ": resolver state bytes differ";
}

struct PipelineRun {
  ResolutionReport report;
  ParsedCheckpoint checkpoint;
};

class OutOfCorePipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::LodCloudConfig cfg;
    cfg.seed = 20260807;
    cfg.num_real_entities = 400;
    cfg.num_kbs = 4;
    cfg.center_kbs = 2;
    auto cloud = datagen::GenerateLodCloud(cfg);
    ASSERT_TRUE(cloud.ok());
    auto collection = cloud->BuildCollection();
    ASSERT_TRUE(collection.ok());
    collection_ = new EntityCollection(std::move(collection).value());
  }
  static void TearDownTestSuite() {
    delete collection_;
    collection_ = nullptr;
  }

  /// One budgeted or unbudgeted session: checkpoint mid-run (after 400
  /// comparisons), then run to exhaustion and report.
  static PipelineRun RunPipeline(BlockerChoice blocker, PruningScheme pruning,
                                 uint32_t threads,
                                 const extmem::MemoryBudgetOptions* memory) {
    WorkflowOptions options;
    options.blocker = blocker;
    // Wider windows / more keys than the defaults: on this small corpus the
    // default sorted neighborhood is too sparse to surface matches that
    // survive edge pruning, and a zero-match run is a vacuous parity check.
    options.sn_options.window_size = 8;
    options.sn_options.keys_per_entity = 5;
    options.meta.weighting = WeightingScheme::kEcbs;
    options.meta.pruning = pruning;
    options.num_threads = threads;
    options.progressive.matcher.threshold = 0.3;
    if (memory != nullptr) options.memory = *memory;
    auto session = ResolutionSession::Open(*collection_, options);
    EXPECT_TRUE(session.ok()) << session.status().message();
    session->Step(400);
    std::ostringstream checkpoint;
    EXPECT_TRUE(session->Checkpoint(checkpoint).ok());
    session->Step(0);
    PipelineRun run;
    run.report = session->Report();
    run.checkpoint = ParseCheckpoint(checkpoint.str());
    return run;
  }

  static void ExpectRunsMatch(const PipelineRun& ref, const PipelineRun& got,
                              const std::string& label) {
    ExpectCheckpointsMatch(ref.checkpoint, got.checkpoint, label);
    EXPECT_EQ(ref.report.blocks_built, got.report.blocks_built) << label;
    EXPECT_EQ(ref.report.blocks_after_cleaning,
              got.report.blocks_after_cleaning)
        << label;
    EXPECT_EQ(ref.report.comparisons_before_meta,
              got.report.comparisons_before_meta)
        << label;
    EXPECT_EQ(ref.report.comparisons_after_meta,
              got.report.comparisons_after_meta)
        << label;
    EXPECT_EQ(ref.report.meta_stats.retained_edges,
              got.report.meta_stats.retained_edges)
        << label;
    EXPECT_EQ(ref.report.progressive.run.comparisons_executed,
              got.report.progressive.run.comparisons_executed)
        << label;
    const auto& ref_matches = ref.report.progressive.run.matches;
    const auto& got_matches = got.report.progressive.run.matches;
    ASSERT_EQ(ref_matches.size(), got_matches.size()) << label;
    for (size_t i = 0; i < ref_matches.size(); ++i) {
      EXPECT_EQ(ref_matches[i].a, got_matches[i].a) << label << " match " << i;
      EXPECT_EQ(ref_matches[i].b, got_matches[i].b) << label << " match " << i;
      EXPECT_EQ(ref_matches[i].comparisons_done,
                got_matches[i].comparisons_done)
          << label << " match " << i;
      EXPECT_EQ(std::memcmp(&ref_matches[i].similarity,
                            &got_matches[i].similarity, sizeof(double)),
                0)
          << label << " match " << i << ": similarity bits differ";
    }
  }

  static EntityCollection* collection_;
};

EntityCollection* OutOfCorePipelineTest::collection_ = nullptr;

TEST_F(OutOfCorePipelineTest, EveryBlockerAndEdgePruningIsByteIdentical) {
  TempBase base("pipeline");
  extmem::MemoryBudgetOptions memory;
  memory.shuffle_budget_bytes = 16 << 10;
  memory.spill_dir = base.str();

  const std::vector<std::pair<BlockerChoice, const char*>> blockers = {
      {BlockerChoice::kToken, "token"},
      {BlockerChoice::kPis, "pis"},
      {BlockerChoice::kQGram, "qgram"},
      {BlockerChoice::kAttributeClustering, "attr-cluster"},
      {BlockerChoice::kSortedNeighborhood, "sorted-nbhd"},
  };
  for (const auto& [blocker, blocker_name] : blockers) {
    for (const PruningScheme pruning :
         {PruningScheme::kCep, PruningScheme::kWep}) {
      const std::string tag = std::string(blocker_name) + "/" +
                              std::string(PruningSchemeName(pruning));
      const PipelineRun reference =
          RunPipeline(blocker, pruning, /*threads=*/1, nullptr);
      ASSERT_GT(reference.report.progressive.run.matches.size(), 0u) << tag;
      for (const uint32_t threads : {1u, 4u}) {
        extmem::ResetSpillTelemetry();
        const PipelineRun budgeted =
            RunPipeline(blocker, pruning, threads, &memory);
        EXPECT_GT(extmem::GetSpillTelemetry().runs_spilled, 0u)
            << tag << ": the budget never forced a spill";
        ExpectRunsMatch(reference, budgeted,
                        tag + " @" + std::to_string(threads) + "t");
      }
      EXPECT_EQ(base.NumEntries(), 0u) << tag << " leaked spill files";
    }
  }
}

}  // namespace
}  // namespace minoan
