// Parity suite for the parallel pipeline front: sharded blocking-index
// construction, parallel BlockingGraphView construction, and the fan-out of
// one workflow --threads flag through blocking → graph → candidate scoring
// → matching. Every path must be BYTE-identical to the sequential one at
// every thread count (1/2/4/7), on a generated LOD corpus large enough to
// span several fixed-size work chunks.

#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "blocking/block_cleaning.h"
#include "blocking/blocking_method.h"
#include "blocking/char_blocking.h"
#include "blocking/sharded_blocking.h"
#include "core/session.h"
#include "datagen/lod_generator.h"
#include "gtest/gtest.h"
#include "mapreduce/engine.h"
#include "mapreduce/parallel_blocking.h"
#include "metablocking/blocking_graph.h"
#include "metablocking/meta_blocking.h"
#include "metablocking/sharded_prune.h"
#include "online/online_resolver.h"
#include "util/thread_pool.h"

namespace minoan {
namespace {

/// True when two block collections are identical: same blocks, same keys,
/// same entity lists, same order.
::testing::AssertionResult SameBlocks(const BlockCollection& a,
                                      const BlockCollection& b) {
  if (a.num_blocks() != b.num_blocks()) {
    return ::testing::AssertionFailure()
           << "block count mismatch: " << a.num_blocks() << " vs "
           << b.num_blocks();
  }
  for (size_t i = 0; i < a.num_blocks(); ++i) {
    if (a.KeyString(a.block(i).key) != b.KeyString(b.block(i).key)) {
      return ::testing::AssertionFailure()
             << "block " << i << " key mismatch: \""
             << a.KeyString(a.block(i).key) << "\" vs \""
             << b.KeyString(b.block(i).key) << "\"";
    }
    if (a.block(i).entities != b.block(i).entities) {
      return ::testing::AssertionFailure()
             << "block " << i << " (\"" << a.KeyString(a.block(i).key)
             << "\") entity list mismatch";
    }
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult SameMatches(const std::vector<MatchEvent>& a,
                                       const std::vector<MatchEvent>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "match count mismatch: " << a.size() << " vs " << b.size();
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].a != b[i].a || a[i].b != b[i].b ||
        a[i].comparisons_done != b[i].comparisons_done ||
        std::memcmp(&a[i].similarity, &b[i].similarity, sizeof(double)) !=
            0) {
      return ::testing::AssertionFailure()
             << "match " << i << " differs: (" << a[i].a << "," << a[i].b
             << "@" << a[i].comparisons_done << ") vs (" << b[i].a << ","
             << b[i].b << "@" << b[i].comparisons_done << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

class ParallelBlockingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::LodCloudConfig cfg;
    cfg.seed = 20260401;
    cfg.num_real_entities = 700;
    cfg.num_kbs = 5;
    cfg.center_kbs = 2;
    auto cloud = datagen::GenerateLodCloud(cfg);
    ASSERT_TRUE(cloud.ok());
    auto collection = cloud->BuildCollection();
    ASSERT_TRUE(collection.ok());
    collection_ = new EntityCollection(std::move(collection).value());
    // The parity claim is only meaningful when the corpus spans several
    // fixed-size entity chunks.
    ASSERT_GT(collection_->num_entities(), 3 * kBlockingChunkEntities);
  }
  static void TearDownTestSuite() {
    delete collection_;
    collection_ = nullptr;
  }

  static EntityCollection* collection_;
};

EntityCollection* ParallelBlockingTest::collection_ = nullptr;

// ---------------------------------------------------------------------------
// Blocking-method parity: sequential vs pool at every thread count
// ---------------------------------------------------------------------------

TEST_F(ParallelBlockingTest, EveryMethodIsByteIdenticalAcrossThreadCounts) {
  std::vector<std::unique_ptr<BlockingMethod>> methods;
  methods.push_back(std::make_unique<TokenBlocking>());
  methods.push_back(std::make_unique<PisBlocking>());
  methods.push_back(std::make_unique<AttributeClusteringBlocking>());
  methods.push_back(std::make_unique<QGramBlocking>());
  methods.push_back(std::make_unique<SortedNeighborhoodBlocking>());
  {
    std::vector<std::unique_ptr<BlockingMethod>> parts;
    parts.push_back(std::make_unique<TokenBlocking>());
    parts.push_back(std::make_unique<PisBlocking>());
    methods.push_back(std::make_unique<CompositeBlocking>(std::move(parts)));
  }
  for (const auto& method : methods) {
    const BlockCollection sequential = method->Build(*collection_);
    EXPECT_GT(sequential.num_blocks(), 0u) << method->name();
    for (uint32_t threads : {2u, 4u, 7u}) {
      ThreadPool pool(threads);
      const BlockCollection parallel = method->Build(*collection_, &pool);
      EXPECT_TRUE(SameBlocks(sequential, parallel))
          << method->name() << " at " << threads << " threads";
    }
  }
}

TEST_F(ParallelBlockingTest, AttributeProfilingIsThreadCountInvariant) {
  // The per-attribute segment fold must reproduce the sequential
  // first-scan cap prefix exactly: identical clusters, identical blocks.
  AttributeClusteringBlocking::Options opts;
  opts.max_profile_tokens = 64;  // small cap so inclusion boundaries bite
  const AttributeClusteringBlocking method(opts);
  const std::vector<uint32_t> sequential =
      method.ClusterPredicates(*collection_);
  const BlockCollection seq_blocks = method.Build(*collection_);
  for (uint32_t threads : {2u, 4u, 7u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(sequential, method.ClusterPredicates(*collection_, &pool))
        << threads << " threads";
    EXPECT_TRUE(SameBlocks(seq_blocks, method.Build(*collection_, &pool)))
        << threads << " threads";
  }
}

TEST_F(ParallelBlockingTest, BlockCleaningIsThreadCountInvariant) {
  const BlockCollection raw = TokenBlocking().Build(*collection_);
  ASSERT_GT(raw.num_blocks(), 0u);

  BlockCollection seq_purged = raw;
  const CleaningStats seq_purge_stats = AutoPurge(
      seq_purged, *collection_, ResolutionMode::kCleanClean);
  BlockCollection seq_filtered = seq_purged;
  const CleaningStats seq_filter_stats = FilterBlocks(
      seq_filtered, 0.8, *collection_, ResolutionMode::kCleanClean);
  ASSERT_GT(seq_filtered.num_blocks(), 0u);

  for (uint32_t threads : {1u, 2u, 4u, 7u}) {
    ThreadPool pool(threads);
    BlockCollection purged = raw;
    const CleaningStats purge_stats =
        AutoPurge(purged, *collection_, ResolutionMode::kCleanClean,
                  /*smoothing=*/1.025, &pool);
    EXPECT_TRUE(SameBlocks(seq_purged, purged)) << threads << " threads";
    EXPECT_EQ(seq_purge_stats.blocks_after, purge_stats.blocks_after);
    EXPECT_EQ(seq_purge_stats.comparisons_after,
              purge_stats.comparisons_after);

    BlockCollection filtered = purged;
    const CleaningStats filter_stats =
        FilterBlocks(filtered, 0.8, *collection_, ResolutionMode::kCleanClean,
                     &pool);
    EXPECT_TRUE(SameBlocks(seq_filtered, filtered)) << threads << " threads";
    EXPECT_EQ(seq_filter_stats.blocks_after, filter_stats.blocks_after);
    EXPECT_EQ(seq_filter_stats.comparisons_after,
              filter_stats.comparisons_after);
  }
}

TEST_F(ParallelBlockingTest, PoolReuseAcrossBuildsIsSafe) {
  // One pool serving several consecutive builds (the session pattern).
  ThreadPool pool(4);
  const BlockCollection first = TokenBlocking().Build(*collection_, &pool);
  const BlockCollection second = TokenBlocking().Build(*collection_, &pool);
  const BlockCollection pis = PisBlocking().Build(*collection_, &pool);
  EXPECT_TRUE(SameBlocks(first, second));
  EXPECT_GT(pis.num_blocks(), 0u);
}

TEST_F(ParallelBlockingTest, MapReducePisBlockingMatchesSequential) {
  const BlockCollection sequential = PisBlocking().Build(*collection_);
  for (uint32_t workers : {1u, 4u}) {
    mapreduce::Engine engine(workers);
    const BlockCollection parallel =
        mapreduce::ParallelPisBlocking(*collection_, engine);
    EXPECT_TRUE(SameBlocks(sequential, parallel)) << workers << " workers";
  }
}

TEST_F(ParallelBlockingTest, MapReduceTokenBlockingMatchesSequential) {
  const BlockCollection sequential = TokenBlocking().Build(*collection_);
  for (uint32_t workers : {1u, 4u}) {
    mapreduce::Engine engine(workers);
    const BlockCollection parallel =
        mapreduce::ParallelTokenBlocking(*collection_, engine);
    EXPECT_TRUE(SameBlocks(sequential, parallel)) << workers << " workers";
  }
}

// ---------------------------------------------------------------------------
// Graph-view construction parity
// ---------------------------------------------------------------------------

TEST_F(ParallelBlockingTest, GraphViewConstructionMatchesSequential) {
  BlockCollection blocks = TokenBlocking().Build(*collection_);
  blocks.BuildEntityIndex(collection_->num_entities());
  for (const WeightingScheme scheme :
       {WeightingScheme::kArcs, WeightingScheme::kEjs,
        WeightingScheme::kEcbs}) {
    const BlockingGraphView sequential(blocks, *collection_, scheme,
                                       ResolutionMode::kCleanClean);
    for (uint32_t threads : {2u, 4u, 7u}) {
      ThreadPool pool(threads);
      const BlockingGraphView parallel(blocks, *collection_, scheme,
                                       ResolutionMode::kCleanClean, &pool);
      EXPECT_EQ(sequential.num_nodes(), parallel.num_nodes());
      EXPECT_EQ(sequential.num_blocks(), parallel.num_blocks());
      EXPECT_EQ(sequential.total_block_assignments(),
                parallel.total_block_assignments());
      // Every edge weight — ARCS terms, EJS degrees and all — must carry
      // the exact same bits.
      NeighborScratch scratch(collection_->num_entities());
      const EntityId sample =
          std::min<EntityId>(3 * kBlockingChunkEntities + 16,
                             collection_->num_entities());
      for (EntityId e = 0; e < sample; ++e) {
        sequential.ForNeighbors(
            scratch, e, /*only_greater=*/true,
            [&](EntityId nb, uint32_t common, double arcs) {
              const double seq_w = sequential.EdgeWeight(e, nb, common, arcs);
              const double par_w = parallel.PairWeight(e, nb);
              EXPECT_EQ(seq_w, par_w)
                  << WeightingSchemeName(scheme) << " edge (" << e << ","
                  << nb << ") at " << threads << " threads";
            });
      }
    }
  }
}

TEST_F(ParallelBlockingTest, PruneOverParallelViewIsByteIdentical) {
  // End-to-end through the pruning core: a view constructed on a pool must
  // feed ShardedPrune the exact same terms as a sequential view.
  BlockCollection blocks = TokenBlocking().Build(*collection_);
  blocks.BuildEntityIndex(collection_->num_entities());
  MetaBlockingOptions opts;
  opts.weighting = WeightingScheme::kArcs;  // weights ARE the arcs terms
  opts.pruning = PruningScheme::kWnp;
  const BlockingGraphView seq_view(blocks, *collection_, opts.weighting,
                                   opts.mode);
  const auto sequential = ShardedPrune(seq_view, opts, nullptr);
  ASSERT_GT(sequential.size(), 0u);
  for (uint32_t threads : {2u, 7u}) {
    ThreadPool pool(threads);
    const BlockingGraphView par_view(blocks, *collection_, opts.weighting,
                                     opts.mode, &pool);
    const auto parallel = ShardedPrune(par_view, opts, &pool);
    ASSERT_EQ(sequential.size(), parallel.size()) << threads << " threads";
    EXPECT_EQ(std::memcmp(sequential.data(), parallel.data(),
                          sequential.size() * sizeof(WeightedComparison)),
              0)
        << threads << " threads";
  }
}

// ---------------------------------------------------------------------------
// Whole-workflow fan-out: one --threads flag, identical matches
// ---------------------------------------------------------------------------

TEST_F(ParallelBlockingTest, SessionMatchSequenceIsThreadCountInvariant) {
  const auto run = [&](uint32_t threads) {
    WorkflowOptions options;
    options.num_threads = threads;
    options.progressive.matcher.threshold = 0.3;
    auto session = ResolutionSession::Open(*collection_, options);
    EXPECT_TRUE(session.ok());
    session->Step(0);
    return session->Report();
  };
  const ResolutionReport reference = run(1);
  EXPECT_GT(reference.progressive.run.matches.size(), 0u);
  for (uint32_t threads : {2u, 4u, 7u}) {
    const ResolutionReport report = run(threads);
    EXPECT_EQ(reference.blocks_built, report.blocks_built);
    EXPECT_EQ(reference.blocks_after_cleaning, report.blocks_after_cleaning);
    EXPECT_EQ(reference.comparisons_before_meta,
              report.comparisons_before_meta);
    EXPECT_EQ(reference.comparisons_after_meta,
              report.comparisons_after_meta);
    EXPECT_EQ(reference.progressive.run.comparisons_executed,
              report.progressive.run.comparisons_executed);
    EXPECT_TRUE(SameMatches(reference.progressive.run.matches,
                            report.progressive.run.matches))
        << threads << " threads";
  }
}

// ---------------------------------------------------------------------------
// Online warm-start scoring parity
// ---------------------------------------------------------------------------

TEST_F(ParallelBlockingTest, OnlineWarmStartIsThreadCountInvariant) {
  datagen::LodCloudConfig cfg;
  cfg.seed = 20260402;
  cfg.num_real_entities = 400;
  cfg.num_kbs = 4;
  cfg.center_kbs = 2;
  const auto matches_at = [&](uint32_t threads) {
    auto cloud = datagen::GenerateLodCloud(cfg);
    EXPECT_TRUE(cloud.ok());
    auto collection = cloud->BuildCollection();
    EXPECT_TRUE(collection.ok());
    online::OnlineOptions options;
    options.matcher.threshold = 0.3;
    options.num_threads = threads;
    online::OnlineResolver resolver(options,
                                    std::move(collection).value());
    resolver.ResolveBudget(1'000'000'000);
    return resolver.run().matches;
  };
  const std::vector<MatchEvent> reference = matches_at(1);
  EXPECT_GT(reference.size(), 0u);
  for (uint32_t threads : {2u, 4u, 7u}) {
    EXPECT_TRUE(SameMatches(reference, matches_at(threads)))
        << threads << " threads";
  }
}

}  // namespace
}  // namespace minoan
