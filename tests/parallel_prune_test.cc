// Parity suite for the sharded pruning core: the parallel path must return
// BYTE-identical retained-edge lists to the single-threaded path for every
// pruning scheme × reciprocal setting, on a generated LOD corpus large
// enough to span many work chunks and vote shards. Plus regression tests
// for the ThreadPool exception contract and the PairWeight point probe.

#include <cstring>
#include <stdexcept>
#include <vector>

#include "blocking/blocking_method.h"
#include "datagen/lod_generator.h"
#include "gtest/gtest.h"
#include "mapreduce/engine.h"
#include "mapreduce/parallel_meta_blocking.h"
#include "metablocking/blocking_graph.h"
#include "metablocking/meta_blocking.h"
#include "metablocking/sharded_prune.h"
#include "util/hash.h"
#include "util/thread_pool.h"

namespace minoan {
namespace {

/// True when the two retained lists are byte-identical (same pairs, same
/// order, same weight bits). WeightedComparison is a packed POD, so memcmp
/// is exact.
::testing::AssertionResult ByteIdentical(
    const std::vector<WeightedComparison>& a,
    const std::vector<WeightedComparison>& b) {
  static_assert(sizeof(WeightedComparison) == 16,
                "memcmp comparison assumes a padding-free layout");
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: " << a.size() << " vs " << b.size();
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(WeightedComparison)) != 0) {
      return ::testing::AssertionFailure()
             << "edge " << i << " differs: (" << a[i].a << "," << a[i].b
             << "," << a[i].weight << ") vs (" << b[i].a << "," << b[i].b
             << "," << b[i].weight << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

// ---------------------------------------------------------------------------
// Sequential vs parallel parity over the full scheme grid
// ---------------------------------------------------------------------------

struct ParityCase {
  WeightingScheme weighting;
  PruningScheme pruning;
  bool reciprocal;
};

std::string ParityCaseName(const ::testing::TestParamInfo<ParityCase>& info) {
  return std::string(WeightingSchemeName(info.param.weighting)) + "_" +
         std::string(PruningSchemeName(info.param.pruning)) +
         (info.param.reciprocal ? "_recip" : "");
}

class ShardedParity : public ::testing::TestWithParam<ParityCase> {
 protected:
  static void SetUpTestSuite() {
    datagen::LodCloudConfig cfg;
    cfg.seed = 20260727;
    cfg.num_real_entities = 700;
    cfg.num_kbs = 5;
    cfg.center_kbs = 2;
    auto cloud = datagen::GenerateLodCloud(cfg);
    ASSERT_TRUE(cloud.ok());
    auto collection = cloud->BuildCollection();
    ASSERT_TRUE(collection.ok());
    collection_ = new EntityCollection(std::move(collection).value());
    blocks_ = new BlockCollection(TokenBlocking().Build(*collection_));
    blocks_->BuildEntityIndex(collection_->num_entities());
    // The parity claim is only meaningful when the corpus spans several
    // fixed-size chunks (FP reduction order) and both vote shards and
    // chunk boundaries get exercised.
    ASSERT_GT(collection_->num_entities(), 3 * kPruneChunkEntities);
  }
  static void TearDownTestSuite() {
    delete blocks_;
    delete collection_;
    blocks_ = nullptr;
    collection_ = nullptr;
  }

  static EntityCollection* collection_;
  static BlockCollection* blocks_;
};

EntityCollection* ShardedParity::collection_ = nullptr;
BlockCollection* ShardedParity::blocks_ = nullptr;

TEST_P(ShardedParity, ParallelPruningIsByteIdentical) {
  MetaBlockingOptions opts;
  opts.weighting = GetParam().weighting;
  opts.pruning = GetParam().pruning;
  opts.reciprocal = GetParam().reciprocal;

  opts.num_threads = 1;
  MetaBlockingStats seq_stats;
  const auto sequential =
      MetaBlocking(opts).Prune(*blocks_, *collection_, &seq_stats);
  EXPECT_GT(sequential.size(), 0u);

  for (uint32_t threads : {2u, 4u, 7u}) {
    opts.num_threads = threads;
    MetaBlockingStats par_stats;
    const auto parallel =
        MetaBlocking(opts).Prune(*blocks_, *collection_, &par_stats);
    EXPECT_TRUE(ByteIdentical(sequential, parallel)) << threads << " threads";
    // Counters fold in fixed chunk order: bit-equal, not just near.
    EXPECT_EQ(seq_stats.graph_edges, par_stats.graph_edges);
    EXPECT_EQ(seq_stats.mean_weight, par_stats.mean_weight);
    EXPECT_EQ(seq_stats.nominations, par_stats.nominations);
  }
}

TEST_P(ShardedParity, MapReducePathIsByteIdentical) {
  MetaBlockingOptions opts;
  opts.weighting = GetParam().weighting;
  opts.pruning = GetParam().pruning;
  opts.reciprocal = GetParam().reciprocal;

  const auto sequential = MetaBlocking(opts).Prune(*blocks_, *collection_);
  for (uint32_t workers : {1u, 4u}) {
    mapreduce::Engine engine(workers);
    const auto parallel = mapreduce::ParallelMetaBlocking(
        *blocks_, *collection_, opts, engine);
    EXPECT_TRUE(ByteIdentical(sequential, parallel)) << workers << " workers";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPruningSchemes, ShardedParity,
    ::testing::Values(
        // All four pruning schemes × reciprocal, with weighting schemes
        // chosen to stress floating point: ECBS (log products) everywhere,
        // plus EJS (degree pass) and ARCS (reciprocal sums) spot checks.
        ParityCase{WeightingScheme::kEcbs, PruningScheme::kWep, false},
        ParityCase{WeightingScheme::kEcbs, PruningScheme::kWep, true},
        ParityCase{WeightingScheme::kEcbs, PruningScheme::kCep, false},
        ParityCase{WeightingScheme::kEcbs, PruningScheme::kCep, true},
        ParityCase{WeightingScheme::kEcbs, PruningScheme::kWnp, false},
        ParityCase{WeightingScheme::kEcbs, PruningScheme::kWnp, true},
        ParityCase{WeightingScheme::kEcbs, PruningScheme::kCnp, false},
        ParityCase{WeightingScheme::kEcbs, PruningScheme::kCnp, true},
        ParityCase{WeightingScheme::kEjs, PruningScheme::kWnp, false},
        ParityCase{WeightingScheme::kEjs, PruningScheme::kCnp, true},
        ParityCase{WeightingScheme::kArcs, PruningScheme::kWep, false},
        ParityCase{WeightingScheme::kArcs, PruningScheme::kCnp, false}),
    ParityCaseName);

TEST(ShardedPruneTest, AutoThreadCountMatchesSequential) {
  datagen::LodCloudConfig cfg;
  cfg.seed = 7;
  cfg.num_real_entities = 120;
  cfg.num_kbs = 3;
  auto cloud = datagen::GenerateLodCloud(cfg);
  ASSERT_TRUE(cloud.ok());
  auto collection = cloud->BuildCollection();
  ASSERT_TRUE(collection.ok());
  BlockCollection blocks = TokenBlocking().Build(*collection);

  MetaBlockingOptions opts;
  opts.num_threads = 1;
  const auto sequential = MetaBlocking(opts).Prune(blocks, *collection);
  opts.num_threads = 0;  // hardware concurrency
  const auto parallel = MetaBlocking(opts).Prune(blocks, *collection);
  EXPECT_TRUE(ByteIdentical(sequential, parallel));
}

TEST(ShardedPruneTest, EmptyCollectionYieldsNoEdges) {
  BlockCollection blocks;
  EntityCollection collection;
  ASSERT_TRUE(collection.Finalize().ok());
  MetaBlockingOptions opts;
  opts.num_threads = 4;
  MetaBlockingStats stats;
  const auto retained = MetaBlocking(opts).Prune(blocks, collection, &stats);
  EXPECT_TRUE(retained.empty());
  EXPECT_EQ(stats.graph_edges, 0u);
}

// ---------------------------------------------------------------------------
// PairWeight point probe vs full neighborhood enumeration
// ---------------------------------------------------------------------------

TEST(PairWeightTest, ProbeMatchesEnumerationForEveryScheme) {
  datagen::LodCloudConfig cfg;
  cfg.seed = 99;
  cfg.num_real_entities = 80;
  cfg.num_kbs = 3;
  auto cloud = datagen::GenerateLodCloud(cfg);
  ASSERT_TRUE(cloud.ok());
  auto collection = cloud->BuildCollection();
  ASSERT_TRUE(collection.ok());
  BlockCollection blocks = TokenBlocking().Build(*collection);
  blocks.BuildEntityIndex(collection->num_entities());

  for (uint32_t ws = 0; ws < kNumWeightingSchemes; ++ws) {
    const auto scheme = static_cast<WeightingScheme>(ws);
    const BlockingGraphView view(blocks, *collection, scheme,
                                 ResolutionMode::kCleanClean);
    NeighborScratch scratch(collection->num_entities());
    uint64_t probed = 0;
    const EntityId sample =
        std::min<EntityId>(64, collection->num_entities());
    for (EntityId e = 0; e < sample; ++e) {
      view.ForNeighbors(scratch, e, /*only_greater=*/false,
                        [&](EntityId nb, uint32_t common, double arcs) {
                          EXPECT_EQ(view.PairWeight(e, nb),
                                    view.EdgeWeight(e, nb, common, arcs))
                              << WeightingSchemeName(scheme) << " edge ("
                              << e << "," << nb << ")";
                          ++probed;
                        });
    }
    EXPECT_GT(probed, 0u) << WeightingSchemeName(scheme);
  }
}

TEST(PairWeightTest, SelfAndSameKbEdgesAreZero) {
  datagen::LodCloudConfig cfg;
  cfg.seed = 11;
  cfg.num_real_entities = 40;
  cfg.num_kbs = 2;
  auto cloud = datagen::GenerateLodCloud(cfg);
  ASSERT_TRUE(cloud.ok());
  auto collection = cloud->BuildCollection();
  ASSERT_TRUE(collection.ok());
  BlockCollection blocks = TokenBlocking().Build(*collection);
  const BlockingGraphView view(blocks, *collection, WeightingScheme::kCbs,
                               ResolutionMode::kCleanClean);
  EXPECT_EQ(view.PairWeight(0, 0), 0.0);
  // Find two entities of the same KB: their clean-clean weight must be 0
  // no matter how many blocks they share.
  for (EntityId a = 0; a + 1 < collection->num_entities(); ++a) {
    if (!collection->CrossKb(a, a + 1)) {
      EXPECT_EQ(view.PairWeight(a, a + 1), 0.0);
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// ThreadPool exception contract
// ---------------------------------------------------------------------------

TEST(ThreadPoolExceptionTest, WaitRethrowsTaskException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
}

TEST(ThreadPoolExceptionTest, PoolSurvivesThrowingTask) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The worker must not have died and in_flight_ must be drained: new work
  // still executes and Wait() neither deadlocks nor rethrows stale state.
  std::atomic<int> count{0};
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPoolExceptionTest, FirstOfManyExceptionsWins) {
  ThreadPool pool(4);
  for (int i = 0; i < 16; ++i) {
    pool.Submit([] { throw std::runtime_error("boom"); });
  }
  // Exactly one rethrow; afterwards the slate is clean.
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  pool.Wait();
}

TEST(ThreadPoolExceptionTest, ParallelForRethrowsAndCompletes) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [&](size_t i) {
                         if (i == 37) throw std::runtime_error("mid boom");
                         hits[i].fetch_add(1);
                       }),
      std::runtime_error);
  // All other iterations ran exactly once (chunks run to completion; only
  // the throwing chunk stops early).
  EXPECT_EQ(hits[0].load(), 1);
  EXPECT_EQ(hits[99].load(), 1);
  // The pool is reusable.
  std::atomic<int> count{0};
  pool.ParallelFor(10, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolExceptionTest, DestructionWithPendingExceptionIsSafe) {
  // A captured exception nobody waited for must not terminate the process.
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("unobserved"); });
  // Destructor drains and joins.
}

}  // namespace
}  // namespace minoan
