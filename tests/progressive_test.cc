// Unit tests for the progressive module: scheduler, resolution state,
// benefit models, and the full scheduling/matching/update loop.

#include <algorithm>
#include <set>

#include "datagen/lod_generator.h"
#include "eval/ground_truth.h"
#include "eval/progressive_metrics.h"
#include "gtest/gtest.h"
#include "matching/similarity_evaluator.h"
#include "metablocking/meta_blocking.h"
#include "blocking/blocking_method.h"
#include "progressive/benefit.h"
#include "progressive/resolver.h"
#include "progressive/scheduler.h"
#include "progressive/state.h"
#include "rdf/ntriples.h"
#include "util/hash.h"

namespace minoan {
namespace {

std::vector<rdf::Triple> Parse(const std::string& doc) {
  rdf::NTriplesParser parser;
  auto result = parser.ParseString(doc);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

// ---------------------------------------------------------------------------
// ComparisonScheduler
// ---------------------------------------------------------------------------

TEST(SchedulerTest, PopsInPriorityOrder) {
  ComparisonScheduler s;
  s.Push(PairKey(0, 1), 0.5);
  s.Push(PairKey(0, 2), 0.9);
  s.Push(PairKey(0, 3), 0.7);
  uint64_t pair;
  double priority;
  ASSERT_TRUE(s.Pop(pair, priority));
  EXPECT_EQ(pair, PairKey(0, 2));
  ASSERT_TRUE(s.Pop(pair, priority));
  EXPECT_EQ(pair, PairKey(0, 3));
  ASSERT_TRUE(s.Pop(pair, priority));
  EXPECT_EQ(pair, PairKey(0, 1));
  EXPECT_FALSE(s.Pop(pair, priority));
}

TEST(SchedulerTest, RepushInvalidatesOldEntry) {
  ComparisonScheduler s;
  s.Push(PairKey(0, 1), 0.9);
  s.Push(PairKey(0, 2), 0.5);
  s.Push(PairKey(0, 1), 0.1);  // downgrade
  uint64_t pair;
  double priority;
  ASSERT_TRUE(s.Pop(pair, priority));
  EXPECT_EQ(pair, PairKey(0, 2));  // 0.5 now highest live
  ASSERT_TRUE(s.Pop(pair, priority));
  EXPECT_EQ(pair, PairKey(0, 1));
  EXPECT_DOUBLE_EQ(priority, 0.1);
  EXPECT_FALSE(s.Pop(pair, priority));  // stale 0.9 entry discarded
}

TEST(SchedulerTest, EachPairPoppedOnce) {
  ComparisonScheduler s;
  for (int i = 0; i < 10; ++i) {
    s.Push(PairKey(0, 1), 0.1 * (i + 1));  // same pair re-pushed 10 times
  }
  uint64_t pair;
  double priority;
  int pops = 0;
  while (s.Pop(pair, priority)) ++pops;
  EXPECT_EQ(pops, 1);
  EXPECT_EQ(s.total_pushes(), 10u);
}

TEST(SchedulerTest, TieBreakDeterministic) {
  ComparisonScheduler s;
  s.Push(PairKey(2, 3), 0.5);
  s.Push(PairKey(0, 1), 0.5);
  uint64_t pair;
  double priority;
  ASSERT_TRUE(s.Pop(pair, priority));
  EXPECT_EQ(pair, PairKey(0, 1));  // smaller pair first on tie
}

TEST(SchedulerTest, EraseRemovesLivePair) {
  ComparisonScheduler s;
  s.Push(PairKey(0, 1), 0.9);
  s.Erase(PairKey(0, 1));
  uint64_t pair;
  double priority;
  EXPECT_FALSE(s.Pop(pair, priority));
  EXPECT_TRUE(s.empty());
}

TEST(SchedulerTest, PriorityOfReflectsLiveState) {
  ComparisonScheduler s;
  EXPECT_DOUBLE_EQ(s.PriorityOf(PairKey(0, 1)), -1.0);
  s.Push(PairKey(0, 1), 0.4);
  EXPECT_DOUBLE_EQ(s.PriorityOf(PairKey(0, 1)), 0.4);
  s.Push(PairKey(0, 1), 0.6);
  EXPECT_DOUBLE_EQ(s.PriorityOf(PairKey(0, 1)), 0.6);
}

// ---------------------------------------------------------------------------
// ResolutionState
// ---------------------------------------------------------------------------

EntityCollection StateFixture() {
  EntityCollection c;
  EXPECT_TRUE(c.AddKnowledgeBase("a", Parse(R"(
<http://a/1> <http://a/p> "alpha beta" .
<http://a/1> <http://a/q> "gamma" .
<http://a/2> <http://a/p> "delta" .
<http://a/1> <http://a/rel> <http://a/2> .
)")).ok());
  EXPECT_TRUE(c.AddKnowledgeBase("b", Parse(R"(
<http://b/1> <http://b/p> "alpha" .
<http://b/1> <http://b/q> "epsilon" .
<http://b/2> <http://b/p> "delta zeta" .
<http://b/1> <http://b/rel> <http://b/2> .
)")).ok());
  EXPECT_TRUE(c.Finalize().ok());
  return c;
}

TEST(StateTest, ClusterValuesMergeOnMatch) {
  EntityCollection c = StateFixture();
  NeighborGraph graph(c);
  ResolutionState state(c, &graph);
  const EntityId a1 = c.FindByIri("http://a/1");
  const EntityId b1 = c.FindByIri("http://b/1");
  const size_t before_a = state.ClusterValues(a1).size();
  const size_t before_b = state.ClusterValues(b1).size();
  EXPECT_TRUE(state.RecordMatch(a1, b1));
  // Values "alpha beta", "gamma" + "alpha", "epsilon" -> distinct union.
  const size_t after = state.ClusterValues(a1).size();
  EXPECT_GT(after, before_a);
  EXPECT_GT(after, before_b);
  EXPECT_EQ(state.ClusterValues(a1).size(), state.ClusterValues(b1).size());
  EXPECT_EQ(state.ClusterSize(a1), 2u);
}

TEST(StateTest, RepeatMatchReturnsFalse) {
  EntityCollection c = StateFixture();
  ResolutionState state(c, nullptr);
  EXPECT_TRUE(state.RecordMatch(0, 2));
  EXPECT_FALSE(state.RecordMatch(0, 2));
  EXPECT_EQ(state.matches_recorded(), 2u);
}

TEST(StateTest, ValueGainCountsNovelValues) {
  EntityCollection c = StateFixture();
  ResolutionState state(c, nullptr);
  const EntityId a1 = c.FindByIri("http://a/1");
  const EntityId b1 = c.FindByIri("http://b/1");
  // a/1 values: {"alpha beta", "gamma"}; b/1 values: {"alpha", "epsilon"}.
  // Disjoint lexical forms -> merged 4, larger 2 -> gain 2.
  EXPECT_EQ(state.ValueGain(a1, b1), 2u);
  state.RecordMatch(a1, b1);
  EXPECT_EQ(state.ValueGain(a1, b1), 0u);  // same cluster now
}

TEST(StateTest, MatchedNeighborTracking) {
  EntityCollection c = StateFixture();
  NeighborGraph graph(c);
  ResolutionState state(c, &graph);
  const EntityId a1 = c.FindByIri("http://a/1");
  const EntityId a2 = c.FindByIri("http://a/2");
  const EntityId b1 = c.FindByIri("http://b/1");
  const EntityId b2 = c.FindByIri("http://b/2");
  EXPECT_DOUBLE_EQ(state.MatchedNeighborFraction(a1, b1, 16), 0.0);
  state.RecordMatch(a2, b2);  // neighbors of (a1, b1) now co-clustered
  EXPECT_DOUBLE_EQ(state.MatchedNeighborFraction(a1, b1, 16), 1.0);
  EXPECT_EQ(state.MatchedNeighborPairs(a1, b1, 16), 1u);
}

TEST(StateTest, NullGraphMeansNoNeighborSignal) {
  EntityCollection c = StateFixture();
  ResolutionState state(c, nullptr);
  EXPECT_DOUBLE_EQ(state.MatchedNeighborFraction(0, 2, 16), 0.0);
  EXPECT_EQ(state.MatchedNeighborPairs(0, 2, 16), 0u);
}

// ---------------------------------------------------------------------------
// Benefit models
// ---------------------------------------------------------------------------

TEST(BenefitTest, Names) {
  EXPECT_EQ(BenefitModelName(BenefitModel::kQuantity), "quantity");
  EXPECT_EQ(BenefitModelName(BenefitModel::kAttributeCompleteness),
            "attr-completeness");
  EXPECT_EQ(BenefitModelName(BenefitModel::kEntityCoverage),
            "entity-coverage");
  EXPECT_EQ(BenefitModelName(BenefitModel::kRelationshipCompleteness),
            "rel-completeness");
}

TEST(BenefitTest, QuantityIsConstant) {
  EntityCollection c = StateFixture();
  ResolutionState state(c, nullptr);
  BenefitEstimator est(BenefitModel::kQuantity);
  EXPECT_DOUBLE_EQ(est.PairBenefit(0, 2, state), 1.0);
  EXPECT_DOUBLE_EQ(est.RealizedBenefit(0, 2, state), 1.0);
}

TEST(BenefitTest, EntityCoverageDecaysWithClusterSize) {
  EntityCollection c = StateFixture();
  ResolutionState state(c, nullptr);
  BenefitEstimator est(BenefitModel::kEntityCoverage);
  const EntityId a1 = c.FindByIri("http://a/1");
  const EntityId b1 = c.FindByIri("http://b/1");
  const EntityId b2 = c.FindByIri("http://b/2");
  EXPECT_DOUBLE_EQ(est.PairBenefit(a1, b1, state), 1.0);
  EXPECT_DOUBLE_EQ(est.RealizedBenefit(a1, b1, state), 1.0);
  state.RecordMatch(a1, b1);
  // Extending the cluster adds no coverage.
  EXPECT_LT(est.PairBenefit(a1, b2, state), 1.0);
  EXPECT_DOUBLE_EQ(est.RealizedBenefit(a1, b2, state), 0.0);
}

TEST(BenefitTest, AttributeCompletenessPrefersNovelProfiles) {
  EntityCollection c = StateFixture();
  ResolutionState state(c, nullptr);
  BenefitEstimator est(BenefitModel::kAttributeCompleteness);
  const EntityId a1 = c.FindByIri("http://a/1");
  const EntityId b1 = c.FindByIri("http://b/1");  // disjoint values: gain 2
  const EntityId a2 = c.FindByIri("http://a/2");
  const EntityId b2 = c.FindByIri("http://b/2");  // disjoint values: gain 1
  EXPECT_GT(est.PairBenefit(a1, b1, state), 0.0);
  EXPECT_DOUBLE_EQ(est.RealizedBenefit(a1, b1, state), 2.0);
  EXPECT_DOUBLE_EQ(est.RealizedBenefit(a2, b2, state), 1.0);
}

TEST(BenefitTest, RelationshipCompletenessRewardsMatchedNeighbors) {
  EntityCollection c = StateFixture();
  NeighborGraph graph(c);
  ResolutionState state(c, &graph);
  BenefitEstimator est(BenefitModel::kRelationshipCompleteness);
  const EntityId a1 = c.FindByIri("http://a/1");
  const EntityId b1 = c.FindByIri("http://b/1");
  const double before = est.PairBenefit(a1, b1, state);
  state.RecordMatch(c.FindByIri("http://a/2"), c.FindByIri("http://b/2"));
  const double after = est.PairBenefit(a1, b1, state);
  EXPECT_GT(after, before);
  EXPECT_DOUBLE_EQ(est.RealizedBenefit(a1, b1, state), 1.0);
}

// ---------------------------------------------------------------------------
// ProgressiveResolver end-to-end on generated clouds
// ---------------------------------------------------------------------------

// Heap-held components so internal cross-references survive struct moves.
struct ResolverWorld {
  std::unique_ptr<EntityCollection> collection_ptr;
  std::unique_ptr<GroundTruth> truth_ptr;
  std::unique_ptr<NeighborGraph> graph_ptr;
  std::unique_ptr<SimilarityEvaluator> evaluator_ptr;
  std::vector<WeightedComparison> candidates;

  EntityCollection& collection() const { return *collection_ptr; }
  GroundTruth& truth() const { return *truth_ptr; }
  NeighborGraph& graph() const { return *graph_ptr; }
  SimilarityEvaluator& evaluator() const { return *evaluator_ptr; }

  static ResolverWorld Make(uint64_t seed, bool periphery_heavy) {
    datagen::LodCloudConfig cfg;
    cfg.seed = seed;
    cfg.num_real_entities = 250;
    cfg.num_kbs = 4;
    cfg.center_kbs = periphery_heavy ? 1 : 2;
    if (periphery_heavy) cfg.periphery_token_overlap = 0.2;
    auto cloud = datagen::GenerateLodCloud(cfg);
    EXPECT_TRUE(cloud.ok());
    auto collection_result = cloud->BuildCollection();
    EXPECT_TRUE(collection_result.ok());
    auto collection = std::make_unique<EntityCollection>(
        std::move(collection_result).value());
    auto truth_result = GroundTruth::FromCloud(*cloud, *collection);
    EXPECT_TRUE(truth_result.ok());
    auto truth =
        std::make_unique<GroundTruth>(std::move(truth_result).value());
    BlockCollection blocks = TokenBlocking().Build(*collection);
    MetaBlockingOptions meta;
    meta.weighting = WeightingScheme::kEcbs;
    meta.pruning = PruningScheme::kWnp;
    auto candidates = MetaBlocking(meta).Prune(blocks, *collection);
    auto graph = std::make_unique<NeighborGraph>(*collection);
    auto evaluator = std::make_unique<SimilarityEvaluator>(*collection);
    return ResolverWorld{std::move(collection), std::move(truth),
                         std::move(graph), std::move(evaluator),
                         std::move(candidates)};
  }
};

TEST(ResolverTest, BudgetIsRespected) {
  ResolverWorld w = ResolverWorld::Make(61, false);
  ProgressiveOptions opts;
  opts.matcher.budget = 100;
  ProgressiveResolver resolver(w.collection(), w.graph(), w.evaluator(), opts);
  const ProgressiveResult result = resolver.Resolve(w.candidates);
  EXPECT_EQ(result.run.comparisons_executed, 100u);
  for (const MatchEvent& m : result.run.matches) {
    EXPECT_LE(m.comparisons_done, 100u);
  }
}

TEST(ResolverTest, UnlimitedBudgetExecutesAtLeastAllCandidates) {
  ResolverWorld w = ResolverWorld::Make(61, false);
  ProgressiveOptions opts;
  opts.matcher.budget = 0;
  opts.enable_update_phase = false;
  ProgressiveResolver resolver(w.collection(), w.graph(), w.evaluator(), opts);
  const ProgressiveResult result = resolver.Resolve(w.candidates);
  EXPECT_EQ(result.run.comparisons_executed, w.candidates.size());
}

TEST(ResolverTest, NoDuplicateComparisons) {
  ResolverWorld w = ResolverWorld::Make(67, true);
  ProgressiveOptions opts;
  opts.matcher.budget = 0;
  ProgressiveResolver resolver(w.collection(), w.graph(), w.evaluator(), opts);
  const ProgressiveResult result = resolver.Resolve(w.candidates);
  std::set<uint64_t> seen;
  for (const MatchEvent& m : result.run.matches) {
    EXPECT_TRUE(seen.insert(PairKey(m.a, m.b)).second)
        << "pair matched twice";
  }
}

TEST(ResolverTest, DeterministicAcrossRuns) {
  ResolverWorld w = ResolverWorld::Make(71, false);
  ProgressiveOptions opts;
  opts.matcher.budget = 500;
  ProgressiveResolver r1(w.collection(), w.graph(), w.evaluator(), opts);
  ProgressiveResolver r2(w.collection(), w.graph(), w.evaluator(), opts);
  const ProgressiveResult a = r1.Resolve(w.candidates);
  const ProgressiveResult b = r2.Resolve(w.candidates);
  ASSERT_EQ(a.run.matches.size(), b.run.matches.size());
  for (size_t i = 0; i < a.run.matches.size(); ++i) {
    EXPECT_EQ(PairKey(a.run.matches[i].a, a.run.matches[i].b),
              PairKey(b.run.matches[i].a, b.run.matches[i].b));
    EXPECT_EQ(a.run.matches[i].comparisons_done,
              b.run.matches[i].comparisons_done);
  }
}

TEST(ResolverTest, UpdatePhaseDiscoversBlockingMissedMatches) {
  ResolverWorld w = ResolverWorld::Make(73, true);
  ProgressiveOptions with;
  with.enable_update_phase = true;
  with.matcher.budget = 0;
  // "Somehow similar" periphery descriptions score low on profile
  // similarity; the threshold must be calibrated to that regime.
  with.matcher.threshold = 0.3;
  ProgressiveOptions without = with;
  without.enable_update_phase = false;

  const ProgressiveResult on =
      ProgressiveResolver(w.collection(), w.graph(), w.evaluator(), with)
          .Resolve(w.candidates);
  const ProgressiveResult off =
      ProgressiveResolver(w.collection(), w.graph(), w.evaluator(), without)
          .Resolve(w.candidates);

  EXPECT_GT(on.discovered_pairs, 0u)
      << "update phase must surface pairs blocking missed";
  EXPECT_EQ(off.discovered_pairs, 0u);

  // Correct-match recall (not raw match count) must improve.
  auto correct = [&](const ProgressiveResult& r) {
    uint64_t n = 0;
    for (const MatchEvent& m : r.run.matches) {
      if (w.truth().Matches(m.a, m.b)) ++n;
    }
    return n;
  };
  EXPECT_GT(correct(on), correct(off));
}

TEST(ResolverTest, EvidenceAssistedMatchesAreCountedAndReal) {
  ResolverWorld w = ResolverWorld::Make(79, true);
  ProgressiveOptions opts;
  opts.enable_update_phase = true;
  opts.matcher.budget = 0;
  opts.matcher.threshold = 0.3;
  const ProgressiveResult result =
      ProgressiveResolver(w.collection(), w.graph(), w.evaluator(), opts)
          .Resolve(w.candidates);
  EXPECT_GT(result.evidence_assisted_matches, 0u);
  EXPECT_LE(result.discovered_matches, result.discovered_pairs);
}

TEST(ResolverTest, BenefitTraceMonotone) {
  ResolverWorld w = ResolverWorld::Make(83, false);
  for (uint32_t model = 0; model < kNumBenefitModels; ++model) {
    ProgressiveOptions opts;
    opts.benefit = static_cast<BenefitModel>(model);
    opts.matcher.budget = 400;
    const ProgressiveResult result =
        ProgressiveResolver(w.collection(), w.graph(), w.evaluator(), opts)
            .Resolve(w.candidates);
    ASSERT_EQ(result.benefit_trace.size(), result.run.matches.size());
    for (size_t i = 1; i < result.benefit_trace.size(); ++i) {
      EXPECT_GE(result.benefit_trace[i], result.benefit_trace[i - 1])
          << BenefitModelName(opts.benefit);
    }
  }
}

TEST(ResolverTest, ProgressiveBeatsRandomEarly) {
  ResolverWorld w = ResolverWorld::Make(89, false);
  ProgressiveOptions opts;
  opts.matcher.budget = 0;
  const ProgressiveResult prog =
      ProgressiveResolver(w.collection(), w.graph(), w.evaluator(), opts)
          .Resolve(w.candidates);

  // Random order over the same candidate set, same budget horizon.
  std::vector<Comparison> random_order;
  for (const auto& c : w.candidates) random_order.emplace_back(c.a, c.b);
  Rng rng(1234);
  rng.Shuffle(random_order);
  MatcherOptions mopts;
  mopts.threshold = opts.matcher.threshold;
  BatchMatcher random_matcher(w.evaluator(), mopts);
  const ResolutionRun random_run = random_matcher.Run(random_order);

  const uint64_t horizon = w.candidates.size();
  const double auc_prog =
      ProgressiveRecallAuc(prog.run, w.truth(), horizon);
  const double auc_rand =
      ProgressiveRecallAuc(random_run, w.truth(), horizon);
  EXPECT_GT(auc_prog, auc_rand * 1.2)
      << "scheduling must front-load recall vs random";
}

TEST(ResolverTest, SchedulerOverheadBounded) {
  ResolverWorld w = ResolverWorld::Make(97, false);
  ProgressiveOptions opts;
  opts.matcher.budget = 0;
  const ProgressiveResult result =
      ProgressiveResolver(w.collection(), w.graph(), w.evaluator(), opts)
          .Resolve(w.candidates);
  // Heap pushes stay within a small multiple of work done (no runaway
  // re-scheduling loops).
  EXPECT_LT(result.scheduler_pushes,
            20 * (result.run.comparisons_executed + w.candidates.size()));
}

}  // namespace
}  // namespace minoan
