// Property-style parameterized suites: invariants that must hold across
// seeds, benefit models, scheme combinations, and budgets.

#include <set>

#include "baseline/schedulers.h"
#include "blocking/block_cleaning.h"
#include "blocking/blocking_method.h"
#include "core/minoan_er.h"
#include "datagen/lod_generator.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "eval/progressive_metrics.h"
#include "gtest/gtest.h"
#include "metablocking/meta_blocking.h"
#include "util/hash.h"

namespace minoan {
namespace {

// ---------------------------------------------------------------------------
// Seed sweep: generator structural invariants hold for arbitrary seeds.
// ---------------------------------------------------------------------------

class SeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweep, GeneratorInvariants) {
  datagen::LodCloudConfig cfg;
  cfg.seed = GetParam();
  cfg.num_real_entities = 200;
  cfg.num_kbs = 4;
  cfg.center_kbs = 1;
  auto cloud = datagen::GenerateLodCloud(cfg);
  ASSERT_TRUE(cloud.ok());
  auto collection = cloud->BuildCollection();
  ASSERT_TRUE(collection.ok());

  // Every entity belongs to exactly one KB range.
  uint64_t covered = 0;
  for (uint32_t k = 0; k < collection->num_kbs(); ++k) {
    covered += collection->kb(k).num_entities();
  }
  EXPECT_EQ(covered, collection->num_entities());

  // Truth resolves, is cross-KB, and matches the cluster map.
  auto truth = GroundTruth::FromCloud(*cloud, *collection);
  ASSERT_TRUE(truth.ok());
  EXPECT_GT(truth->num_pairs(), 0u);

  // Tokens are sorted/unique; relations point to valid same-KB entities.
  for (const EntityDescription& e : collection->entities()) {
    EXPECT_TRUE(std::is_sorted(e.tokens.begin(), e.tokens.end()));
    for (const Relation& r : e.relations) {
      ASSERT_LT(r.target, collection->num_entities());
      EXPECT_EQ(collection->entity(r.target).kb, e.kb);
    }
  }
}

TEST_P(SeedSweep, BlockingInvariants) {
  datagen::LodCloudConfig cfg;
  cfg.seed = GetParam();
  cfg.num_real_entities = 200;
  cfg.num_kbs = 4;
  auto cloud = datagen::GenerateLodCloud(cfg);
  ASSERT_TRUE(cloud.ok());
  auto collection = cloud->BuildCollection();
  ASSERT_TRUE(collection.ok());

  BlockCollection blocks = TokenBlocking().Build(*collection);
  // Every block: >= 2 sorted unique entities; aggregate >= distinct.
  for (const Block& b : blocks.blocks()) {
    EXPECT_GE(b.size(), 2u);
    EXPECT_TRUE(std::is_sorted(b.entities.begin(), b.entities.end()));
    EXPECT_EQ(std::adjacent_find(b.entities.begin(), b.entities.end()),
              b.entities.end());
  }
  const uint64_t aggregate =
      blocks.AggregateComparisons(*collection, ResolutionMode::kCleanClean);
  const auto distinct =
      blocks.DistinctComparisons(*collection, ResolutionMode::kCleanClean);
  EXPECT_GE(aggregate, distinct.size());

  // Cleaning can only shrink comparisons and never empties the block set.
  BlockCollection cleaned = blocks;
  AutoPurge(cleaned, *collection, ResolutionMode::kCleanClean);
  FilterBlocks(cleaned, 0.8, *collection, ResolutionMode::kCleanClean);
  EXPECT_LE(
      cleaned.AggregateComparisons(*collection, ResolutionMode::kCleanClean),
      aggregate);
  EXPECT_GT(cleaned.num_blocks(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

// ---------------------------------------------------------------------------
// Budget monotonicity: recall and quality aspects never decrease with more
// budget, for every benefit model.
// ---------------------------------------------------------------------------

struct BudgetCase {
  BenefitModel model;
  uint64_t seed;
};

std::string BudgetCaseName(const ::testing::TestParamInfo<BudgetCase>& info) {
  std::string name(BenefitModelName(info.param.model));
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_s" + std::to_string(info.param.seed);
}

class BudgetMonotonicity : public ::testing::TestWithParam<BudgetCase> {};

TEST_P(BudgetMonotonicity, MoreBudgetNeverHurts) {
  datagen::LodCloudConfig cfg;
  cfg.seed = GetParam().seed;
  cfg.num_real_entities = 250;
  cfg.num_kbs = 4;
  cfg.center_kbs = 2;
  auto cloud = datagen::GenerateLodCloud(cfg);
  ASSERT_TRUE(cloud.ok());
  auto collection = cloud->BuildCollection();
  ASSERT_TRUE(collection.ok());
  auto truth = GroundTruth::FromCloud(*cloud, *collection);
  ASSERT_TRUE(truth.ok());
  NeighborGraph graph(*collection);

  WorkflowOptions opts;
  opts.progressive.benefit = GetParam().model;
  opts.progressive.matcher.budget = 0;  // run to completion once
  MinoanEr er(opts);
  auto report = er.Run(*collection);
  ASSERT_TRUE(report.ok());
  const ResolutionRun& full = report->progressive.run;

  double prev_recall = -1.0;
  double prev_coverage = -1.0;
  for (uint64_t budget :
       {full.comparisons_executed / 10, full.comparisons_executed / 3,
        full.comparisons_executed}) {
    const ResolutionRun cut = TruncateRun(full, budget);
    const MatchingMetrics m = EvaluateMatches(cut.matches, *truth);
    const QualityAspects q =
        EvaluateQualityAspects(cut, *truth, *collection, graph);
    EXPECT_GE(m.recall, prev_recall);
    EXPECT_GE(q.entity_coverage, prev_coverage);
    EXPECT_GE(q.attribute_completeness, 0.0);
    EXPECT_LE(q.attribute_completeness, 1.0);
    EXPECT_LE(q.entity_coverage, 1.0);
    EXPECT_LE(q.relationship_completeness, 1.0);
    prev_recall = m.recall;
    prev_coverage = q.entity_coverage;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndSeeds, BudgetMonotonicity,
    ::testing::Values(
        BudgetCase{BenefitModel::kQuantity, 301},
        BudgetCase{BenefitModel::kQuantity, 302},
        BudgetCase{BenefitModel::kAttributeCompleteness, 301},
        BudgetCase{BenefitModel::kAttributeCompleteness, 302},
        BudgetCase{BenefitModel::kEntityCoverage, 301},
        BudgetCase{BenefitModel::kEntityCoverage, 302},
        BudgetCase{BenefitModel::kRelationshipCompleteness, 301},
        BudgetCase{BenefitModel::kRelationshipCompleteness, 302}),
    BudgetCaseName);

// ---------------------------------------------------------------------------
// Scheduler dominance: every progressive scheduler beats random ordering on
// AUC over the same candidates.
// ---------------------------------------------------------------------------

class SchedulerDominance : public ::testing::TestWithParam<BenefitModel> {};

TEST_P(SchedulerDominance, BeatsRandomAuc) {
  datagen::LodCloudConfig cfg;
  cfg.seed = 401;
  cfg.num_real_entities = 300;
  cfg.num_kbs = 4;
  cfg.center_kbs = 2;
  auto cloud = datagen::GenerateLodCloud(cfg);
  ASSERT_TRUE(cloud.ok());
  auto collection = cloud->BuildCollection();
  ASSERT_TRUE(collection.ok());
  auto truth = GroundTruth::FromCloud(*cloud, *collection);
  ASSERT_TRUE(truth.ok());

  BlockCollection blocks = TokenBlocking().Build(*collection);
  MetaBlockingOptions meta;
  auto candidates = MetaBlocking(meta).Prune(blocks, *collection);
  NeighborGraph graph(*collection);
  SimilarityEvaluator evaluator(*collection);

  ProgressiveOptions opts;
  opts.benefit = GetParam();
  const ProgressiveResult prog =
      ProgressiveResolver(*collection, graph, evaluator, opts)
          .Resolve(candidates);

  MatcherOptions mopts;
  BatchMatcher random_matcher(evaluator, mopts);
  const ResolutionRun rnd =
      random_matcher.Run(baseline::RandomOrder(candidates, 999));

  const uint64_t horizon = candidates.size();
  EXPECT_GT(ProgressiveRecallAuc(prog.run, *truth, horizon),
            ProgressiveRecallAuc(rnd, *truth, horizon))
      << BenefitModelName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, SchedulerDominance,
    ::testing::Values(BenefitModel::kQuantity,
                      BenefitModel::kAttributeCompleteness,
                      BenefitModel::kEntityCoverage,
                      BenefitModel::kRelationshipCompleteness),
    [](const auto& info) {
      std::string name(BenefitModelName(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Each benefit model wins (or ties) its own quality metric at small budget.
// The poster's central claim: quality-aspect scheduling front-loads the
// targeted aspect relative to the quantity baseline.
// ---------------------------------------------------------------------------

TEST(BenefitSpecialization, ModelsImproveTheirOwnMetricOverRandom) {
  datagen::LodCloudConfig cfg;
  cfg.seed = 403;
  cfg.num_real_entities = 300;
  cfg.num_kbs = 5;
  cfg.center_kbs = 2;
  auto cloud = datagen::GenerateLodCloud(cfg);
  ASSERT_TRUE(cloud.ok());
  auto collection = cloud->BuildCollection();
  ASSERT_TRUE(collection.ok());
  auto truth = GroundTruth::FromCloud(*cloud, *collection);
  ASSERT_TRUE(truth.ok());
  BlockCollection blocks = TokenBlocking().Build(*collection);
  auto candidates = MetaBlocking().Prune(blocks, *collection);
  NeighborGraph graph(*collection);
  SimilarityEvaluator evaluator(*collection);

  const uint64_t budget = candidates.size() / 5;  // small budget regime
  auto run_model = [&](BenefitModel model) {
    ProgressiveOptions opts;
    opts.benefit = model;
    opts.matcher.budget = budget;
    return ProgressiveResolver(*collection, graph, evaluator, opts)
        .Resolve(candidates);
  };

  MatcherOptions mopts;
  mopts.budget = budget;
  BatchMatcher random_matcher(evaluator, mopts);
  const ResolutionRun rnd =
      random_matcher.Run(baseline::RandomOrder(candidates, 555));
  const QualityAspects q_rnd =
      EvaluateQualityAspects(rnd, *truth, *collection, graph);

  const QualityAspects q_attr = EvaluateQualityAspects(
      run_model(BenefitModel::kAttributeCompleteness).run, *truth,
      *collection, graph);
  const QualityAspects q_cov = EvaluateQualityAspects(
      run_model(BenefitModel::kEntityCoverage).run, *truth, *collection,
      graph);
  const QualityAspects q_rel = EvaluateQualityAspects(
      run_model(BenefitModel::kRelationshipCompleteness).run, *truth,
      *collection, graph);

  EXPECT_GT(q_attr.attribute_completeness, q_rnd.attribute_completeness);
  EXPECT_GT(q_cov.entity_coverage, q_rnd.entity_coverage);
  EXPECT_GT(q_rel.relationship_completeness, q_rnd.relationship_completeness);
}

}  // namespace
}  // namespace minoan
