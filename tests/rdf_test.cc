// Unit tests for the RDF substrate: term model, N-Triples parsing/writing,
// IRI decomposition.

#include <fstream>
#include <sstream>

#include "gtest/gtest.h"
#include "rdf/iri.h"
#include "rdf/ntriples.h"
#include "rdf/term.h"

namespace minoan {
namespace rdf {
namespace {

// ---------------------------------------------------------------------------
// Term serialization
// ---------------------------------------------------------------------------

TEST(TermTest, IriSerialization) {
  EXPECT_EQ(Term::Iri("http://x.org/a").ToNTriples(), "<http://x.org/a>");
}

TEST(TermTest, BlankSerialization) {
  EXPECT_EQ(Term::Blank("b42").ToNTriples(), "_:b42");
}

TEST(TermTest, PlainLiteralSerialization) {
  EXPECT_EQ(Term::Literal("hello").ToNTriples(), "\"hello\"");
}

TEST(TermTest, LangLiteralSerialization) {
  EXPECT_EQ(Term::Literal("γεια", "", "el").ToNTriples(), "\"γεια\"@el");
}

TEST(TermTest, TypedLiteralSerialization) {
  EXPECT_EQ(Term::Literal("5", std::string(kXsdInteger)).ToNTriples(),
            "\"5\"^^<http://www.w3.org/2001/XMLSchema#integer>");
}

TEST(TermTest, XsdStringDatatypeElided) {
  EXPECT_EQ(Term::Literal("x", std::string(kXsdString)).ToNTriples(),
            "\"x\"");
}

TEST(TermTest, EscapingInLiterals) {
  EXPECT_EQ(Term::Literal("a\"b\\c\nd").ToNTriples(),
            "\"a\\\"b\\\\c\\nd\"");
}

TEST(TermTest, EqualityIncludesKindAndTags) {
  EXPECT_EQ(Term::Iri("x"), Term::Iri("x"));
  EXPECT_FALSE(Term::Iri("x") == Term::Blank("x"));
  EXPECT_FALSE(Term::Literal("v", "", "en") == Term::Literal("v", "", "de"));
}

TEST(TripleTest, LineSerialization) {
  Triple t{Term::Iri("http://x/s"), Term::Iri("http://x/p"),
           Term::Literal("o")};
  EXPECT_EQ(t.ToNTriples(), "<http://x/s> <http://x/p> \"o\" .");
}

// ---------------------------------------------------------------------------
// Parser: happy paths
// ---------------------------------------------------------------------------

Triple ParseOne(const std::string& line) {
  NTriplesParser parser;
  Triple t;
  bool is_triple = false;
  const Status st = parser.ParseLine(line, t, is_triple);
  EXPECT_TRUE(st.ok()) << st;
  EXPECT_TRUE(is_triple);
  return t;
}

TEST(ParserTest, BasicTriple) {
  const Triple t =
      ParseOne("<http://x/s> <http://x/p> <http://x/o> .");
  EXPECT_EQ(t.subject.lexical, "http://x/s");
  EXPECT_EQ(t.predicate.lexical, "http://x/p");
  EXPECT_EQ(t.object.lexical, "http://x/o");
  EXPECT_TRUE(t.object.is_iri());
}

TEST(ParserTest, LiteralObject) {
  const Triple t = ParseOne("<http://x/s> <http://x/p> \"Minoan ER\" .");
  EXPECT_TRUE(t.object.is_literal());
  EXPECT_EQ(t.object.lexical, "Minoan ER");
}

TEST(ParserTest, LangTaggedLiteral) {
  const Triple t = ParseOne("<http://x/s> <http://x/p> \"Crete\"@en-GB .");
  EXPECT_EQ(t.object.language, "en-GB");
}

TEST(ParserTest, TypedLiteral) {
  const Triple t = ParseOne(
      "<http://x/s> <http://x/p> "
      "\"5\"^^<http://www.w3.org/2001/XMLSchema#integer> .");
  EXPECT_EQ(t.object.datatype, "http://www.w3.org/2001/XMLSchema#integer");
}

TEST(ParserTest, BlankSubjectAndObject) {
  const Triple t = ParseOne("_:a <http://x/p> _:b1 .");
  EXPECT_TRUE(t.subject.is_blank());
  EXPECT_EQ(t.subject.lexical, "a");
  EXPECT_TRUE(t.object.is_blank());
  EXPECT_EQ(t.object.lexical, "b1");
}

TEST(ParserTest, BlankObjectDirectlyBeforeTerminator) {
  const Triple t = ParseOne("_:a <http://x/p> _:b1.");
  EXPECT_EQ(t.object.lexical, "b1");
}

TEST(ParserTest, EscapeSequences) {
  const Triple t =
      ParseOne(R"(<http://x/s> <http://x/p> "line\nbreak\t\"q\"" .)");
  EXPECT_EQ(t.object.lexical, "line\nbreak\t\"q\"");
}

TEST(ParserTest, UnicodeEscapes) {
  const Triple t = ParseOne(R"(<http://x/s> <http://x/p> "Aé" .)");
  EXPECT_EQ(t.object.lexical, "Aé");
}

TEST(ParserTest, LongUnicodeEscape) {
  const Triple t = ParseOne(R"(<http://x/s> <http://x/p> "\U0001F600" .)");
  EXPECT_EQ(t.object.lexical, "\xF0\x9F\x98\x80");  // emoji, 4 UTF-8 bytes
}

TEST(ParserTest, CommentsAndBlanksSkipped) {
  NTriplesParser parser;
  Triple t;
  bool is_triple = true;
  EXPECT_TRUE(parser.ParseLine("# a comment", t, is_triple).ok());
  EXPECT_FALSE(is_triple);
  EXPECT_TRUE(parser.ParseLine("   ", t, is_triple).ok());
  EXPECT_FALSE(is_triple);
  EXPECT_TRUE(parser.ParseLine("", t, is_triple).ok());
  EXPECT_FALSE(is_triple);
}

TEST(ParserTest, TrailingCommentAfterDot) {
  const Triple t = ParseOne("<http://x/s> <http://x/p> \"v\" . # trailing");
  EXPECT_EQ(t.object.lexical, "v");
}

TEST(ParserTest, ExtraWhitespaceTolerated) {
  const Triple t = ParseOne("  <http://x/s>\t<http://x/p>   \"v\"  .  ");
  EXPECT_EQ(t.object.lexical, "v");
}

// ---------------------------------------------------------------------------
// Parser: error paths
// ---------------------------------------------------------------------------

Status ParseErr(const std::string& line) {
  NTriplesParser parser;
  Triple t;
  bool is_triple = false;
  return parser.ParseLine(line, t, is_triple);
}

TEST(ParserErrorTest, MissingTerminator) {
  EXPECT_FALSE(ParseErr("<http://x/s> <http://x/p> \"v\"").ok());
}

TEST(ParserErrorTest, LiteralSubjectRejected) {
  EXPECT_FALSE(ParseErr("\"v\" <http://x/p> \"o\" .").ok());
}

TEST(ParserErrorTest, NonIriPredicateRejected) {
  EXPECT_FALSE(ParseErr("<http://x/s> \"p\" \"o\" .").ok());
  EXPECT_FALSE(ParseErr("<http://x/s> _:p \"o\" .").ok());
}

TEST(ParserErrorTest, UnterminatedIri) {
  EXPECT_FALSE(ParseErr("<http://x/s <http://x/p> <http://x/o> .").ok());
}

TEST(ParserErrorTest, UnterminatedLiteral) {
  EXPECT_FALSE(ParseErr("<http://x/s> <http://x/p> \"open .").ok());
}

TEST(ParserErrorTest, BadEscape) {
  EXPECT_FALSE(ParseErr(R"(<s://a/s> <s://a/p> "bad\q" .)").ok());
  EXPECT_FALSE(ParseErr(R"(<s://a/s> <s://a/p> "bad\u12g4" .)").ok());
}

TEST(ParserErrorTest, EmptyIriRejected) {
  EXPECT_FALSE(ParseErr("<> <http://x/p> \"v\" .").ok());
}

TEST(ParserErrorTest, SpaceInsideIriRejected) {
  EXPECT_FALSE(ParseErr("<http://x/a b> <http://x/p> \"v\" .").ok());
}

TEST(ParserErrorTest, TrailingGarbageRejected) {
  EXPECT_FALSE(ParseErr("<http://x/s> <http://x/p> \"v\" . garbage").ok());
}

TEST(ParserErrorTest, ErrorsMentionColumn) {
  const Status st = ParseErr("<http://x/s> <http://x/p> \"v\"");
  EXPECT_NE(st.message().find("column"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Stream parsing: strict vs lenient
// ---------------------------------------------------------------------------

constexpr const char* kMixedDoc =
    "# header comment\n"
    "<http://x/s1> <http://x/p> \"a\" .\n"
    "THIS LINE IS GARBAGE\n"
    "<http://x/s2> <http://x/p> \"b\" .\n"
    "\n"
    "<http://x/s3> <http://x/p> \"c\" .\n";

TEST(StreamTest, LenientSkipsAndCounts) {
  NTriplesParser parser;  // lenient by default
  ParseStats stats;
  auto result = parser.ParseString(kMixedDoc, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 3u);
  EXPECT_EQ(stats.triples, 3u);
  EXPECT_EQ(stats.skipped, 1u);
  EXPECT_EQ(stats.comments, 2u);  // comment + empty line
  EXPECT_EQ(stats.lines, 6u);
}

TEST(StreamTest, StrictAbortsWithLineNumber) {
  NTriplesOptions opts;
  opts.strict = true;
  NTriplesParser parser(opts);
  auto result = parser.ParseString(kMixedDoc);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 3"), std::string::npos);
}

TEST(StreamTest, CrLfLineEndings) {
  NTriplesParser parser;
  auto result = parser.ParseString(
      "<http://x/s> <http://x/p> \"v\" .\r\n"
      "<http://x/s2> <http://x/p> \"w\" .\r\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);
}

TEST(StreamTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/roundtrip.nt";
  std::vector<Triple> original = {
      {Term::Iri("http://x/s"), Term::Iri("http://x/p"),
       Term::Literal("v w", "", "en")},
      {Term::Iri("http://x/s"), Term::Iri("http://x/q"),
       Term::Literal("5", std::string(kXsdInteger))},
      {Term::Blank("n1"), Term::Iri("http://x/p"), Term::Iri("http://x/o")},
      {Term::Iri("http://x/esc"), Term::Iri("http://x/p"),
       Term::Literal("line\nbreak \"quoted\" back\\slash")},
  };
  {
    std::ofstream out(path);
    NTriplesWriter writer(out);
    writer.WriteAll(original);
  }
  NTriplesParser parser;
  auto result = parser.ParseFile(path);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ((*result)[i], original[i]) << "triple " << i;
  }
}

TEST(StreamTest, MissingFileReportsIoError) {
  NTriplesParser parser;
  auto result = parser.ParseFile("/nonexistent/path/x.nt");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

// ---------------------------------------------------------------------------
// IRI utilities
// ---------------------------------------------------------------------------

TEST(IriTest, AbsoluteDetection) {
  EXPECT_TRUE(LooksLikeAbsoluteIri("http://x.org/a"));
  EXPECT_TRUE(LooksLikeAbsoluteIri("urn+custom://x/a"));
  EXPECT_FALSE(LooksLikeAbsoluteIri("not an iri"));
  EXPECT_FALSE(LooksLikeAbsoluteIri("://missing-scheme"));
  EXPECT_FALSE(LooksLikeAbsoluteIri("rel/path"));
}

TEST(IriTest, NamespaceAndLocalName) {
  EXPECT_EQ(IriNamespace("http://x.org/v#name"), "http://x.org/v#");
  EXPECT_EQ(IriLocalName("http://x.org/v#name"), "name");
  EXPECT_EQ(IriNamespace("http://x.org/v/name"), "http://x.org/v/");
  EXPECT_EQ(IriLocalName("http://x.org/v/name"), "name");
  EXPECT_EQ(IriLocalName("name-only"), "name-only");
}

TEST(IriTest, SplitBasicPath) {
  const IriParts p = SplitIri("http://dbpedia.org/resource/Heraklion");
  EXPECT_EQ(p.prefix, "http://dbpedia.org");
  EXPECT_EQ(p.infix, "/resource");
  EXPECT_EQ(p.suffix, "Heraklion");
}

TEST(IriTest, SplitFragment) {
  const IriParts p = SplitIri("http://x.org/data/item#frag");
  EXPECT_EQ(p.prefix, "http://x.org");
  EXPECT_EQ(p.infix, "/data/item");
  EXPECT_EQ(p.suffix, "frag");
}

TEST(IriTest, SplitNoPath) {
  const IriParts p = SplitIri("http://x.org");
  EXPECT_EQ(p.prefix, "http://x.org");
  EXPECT_EQ(p.infix, "");
  EXPECT_EQ(p.suffix, "");
}

TEST(IriTest, SplitDeepPath) {
  const IriParts p = SplitIri("http://x.org/a/b/c/d");
  EXPECT_EQ(p.prefix, "http://x.org");
  EXPECT_EQ(p.infix, "/a/b/c");
  EXPECT_EQ(p.suffix, "d");
}

TEST(IriTest, SplitRelativeFallsToSuffix) {
  const IriParts p = SplitIri("just-a-name");
  EXPECT_EQ(p.prefix, "");
  EXPECT_EQ(p.suffix, "just-a-name");
}

TEST(IriTest, SplitTrailingSlash) {
  const IriParts p = SplitIri("http://x.org/a/b/");
  EXPECT_EQ(p.suffix, "b");
}

}  // namespace
}  // namespace rdf
}  // namespace minoan
