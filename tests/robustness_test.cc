// Robustness and failure-injection tests: random garbage into the parsers,
// degenerate collections into the pipeline, stress through the MapReduce
// engine. Nothing here may crash, hang, or violate an invariant.

#include <string>

#include "core/minoan_er.h"
#include "datagen/lod_generator.h"
#include "gtest/gtest.h"
#include "mapreduce/engine.h"
#include "metablocking/meta_blocking.h"
#include "progressive/resolver.h"
#include "rdf/ntriples.h"
#include "rdf/turtle.h"
#include "util/rng.h"

namespace minoan {
namespace {

std::string RandomBytes(Rng& rng, size_t length, bool printable) {
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    if (printable) {
      out += static_cast<char>(' ' + rng.Below(95));
    } else {
      out += static_cast<char>(rng.Below(256));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Parser fuzz-ish robustness
// ---------------------------------------------------------------------------

TEST(ParserRobustnessTest, LenientNTriplesSurvivesPrintableGarbage) {
  Rng rng(0xf00d);
  rdf::NTriplesParser parser;  // lenient
  std::string doc;
  for (int i = 0; i < 500; ++i) {
    doc += RandomBytes(rng, rng.Below(120), /*printable=*/true);
    doc += '\n';
  }
  rdf::ParseStats stats;
  auto result = parser.ParseString(doc, &stats);
  ASSERT_TRUE(result.ok());  // lenient mode never errors
  EXPECT_EQ(stats.lines, 500u);
  // Nearly everything should be skipped or comment; accepted lines (if any
  // random line forms a triple by chance) must be well-formed.
  for (const rdf::Triple& t : *result) {
    EXPECT_FALSE(t.predicate.lexical.empty());
  }
}

TEST(ParserRobustnessTest, LenientNTriplesSurvivesBinaryGarbage) {
  Rng rng(0xbeef);
  rdf::NTriplesParser parser;
  std::string doc;
  for (int i = 0; i < 200; ++i) {
    std::string line = RandomBytes(rng, rng.Below(80), /*printable=*/false);
    // Keep the line structure: no embedded newlines.
    for (char& c : line) {
      if (c == '\n' || c == '\r') c = '?';
    }
    doc += line;
    doc += '\n';
  }
  rdf::ParseStats stats;
  auto result = parser.ParseString(doc, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.lines, 200u);
}

TEST(ParserRobustnessTest, GarbageInterleavedWithValidLines) {
  Rng rng(0xcafe);
  rdf::NTriplesParser parser;
  std::string doc;
  uint64_t valid = 0;
  for (int i = 0; i < 300; ++i) {
    if (i % 3 == 0) {
      doc += "<http://x/s" + std::to_string(i) + "> <http://x/p> \"v\" .\n";
      ++valid;
    } else {
      doc += RandomBytes(rng, rng.Below(60), true) + "\n";
    }
  }
  rdf::ParseStats stats;
  auto result = parser.ParseString(doc, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->size(), valid);  // every valid line recovered
}

TEST(ParserRobustnessTest, MaxLineLengthEnforced) {
  rdf::NTriplesOptions opts;
  opts.max_line_bytes = 64;
  opts.strict = true;
  rdf::NTriplesParser parser(opts);
  const std::string long_line = "<http://x/s> <http://x/p> \"" +
                                std::string(1000, 'a') + "\" .";
  rdf::Triple t;
  bool is_triple;
  EXPECT_FALSE(parser.ParseLine(long_line, t, is_triple).ok());
}

TEST(ParserRobustnessTest, TurtleGarbageErrorsWithoutCrash) {
  Rng rng(0xdead);
  rdf::TurtleParser parser;
  for (int i = 0; i < 100; ++i) {
    const std::string doc = RandomBytes(rng, 200, true);
    auto result = parser.ParseString(doc);
    // Either parses (unlikely) or reports a structured error.
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kParseError);
    }
  }
}

TEST(ParserRobustnessTest, TurtleDeeplyNestedBlankNodes) {
  // 64 nesting levels; must not blow the stack or mis-count.
  std::string doc = "@prefix ex: <http://x/> .\nex:s ex:p ";
  for (int i = 0; i < 64; ++i) doc += "[ ex:q ";
  doc += "\"leaf\"";
  for (int i = 0; i < 64; ++i) doc += " ]";
  doc += " .\n";
  rdf::TurtleParser parser;
  auto result = parser.ParseString(doc);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 65u);
}

// ---------------------------------------------------------------------------
// Degenerate collections through the full pipeline
// ---------------------------------------------------------------------------

EntityCollection FromDoc(const std::string& doc, int kbs = 1) {
  rdf::NTriplesParser parser;
  EntityCollection c;
  for (int k = 0; k < kbs; ++k) {
    auto triples = parser.ParseString(doc);
    EXPECT_TRUE(triples.ok());
    EXPECT_TRUE(c.AddKnowledgeBase("kb" + std::to_string(k), *triples).ok());
  }
  EXPECT_TRUE(c.Finalize().ok());
  return c;
}

TEST(PipelineRobustnessTest, EmptyCollection) {
  EntityCollection c = FromDoc("");
  MinoanEr er;
  auto report = er.Run(c);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->progressive.run.matches.size(), 0u);
}

TEST(PipelineRobustnessTest, SingleEntity) {
  EntityCollection c = FromDoc("<http://x/only> <http://x/p> \"alone\" .");
  MinoanEr er;
  auto report = er.Run(c);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->progressive.run.matches.size(), 0u);
}

TEST(PipelineRobustnessTest, IdenticalKbs) {
  // Two byte-identical KBs: every description should match its twin.
  const std::string doc = R"(
<http://x/a> <http://x/name> "alpha beta gamma" .
<http://x/b> <http://x/name> "delta epsilon zeta" .
<http://x/c> <http://x/name> "eta theta iota" .
)";
  EntityCollection c = FromDoc(doc, /*kbs=*/2);
  WorkflowOptions opts;
  opts.progressive.matcher.threshold = 0.5;
  MinoanEr er(opts);
  auto report = er.Run(c);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->progressive.run.matches.size(), 3u);
  for (const MatchEvent& m : report->progressive.run.matches) {
    EXPECT_NEAR(m.similarity, 1.0, 1e-9);
  }
}

TEST(PipelineRobustnessTest, EntitiesWithoutTokens) {
  // Values collapse to nothing after tokenization (min length 2).
  const std::string doc = R"(
<http://x/1> <http://x/p> "a" .
<http://x/2> <http://x/p> "b" .
)";
  EntityCollection c = FromDoc(doc);
  MinoanEr er;
  auto report = er.Run(c);
  ASSERT_TRUE(report.ok());  // nothing to block on; must not crash
}

TEST(PipelineRobustnessTest, SelfReferentialSameAsIgnored) {
  const std::string doc = R"(
<http://x/1> <http://www.w3.org/2002/07/owl#sameAs> <http://x/1> .
<http://x/1> <http://x/p> "some value tokens" .
)";
  EntityCollection c = FromDoc(doc);
  EXPECT_TRUE(c.same_as_links().empty());
}

TEST(PipelineRobustnessTest, AllEntitiesInOneKbCleanClean) {
  // Clean-clean over a single KB: zero candidate comparisons, no crash.
  const std::string doc = R"(
<http://x/1> <http://x/p> "alpha beta" .
<http://x/2> <http://x/p> "alpha beta" .
)";
  EntityCollection c = FromDoc(doc);
  BlockCollection blocks = TokenBlocking().Build(c);
  const auto distinct =
      blocks.DistinctComparisons(c, ResolutionMode::kCleanClean);
  EXPECT_TRUE(distinct.empty());
  // Dirty mode sees the pair.
  EXPECT_EQ(blocks.DistinctComparisons(c, ResolutionMode::kDirty).size(), 1u);
}

TEST(ResolverRobustnessTest, EmptyCandidates) {
  EntityCollection c = FromDoc("<http://x/1> <http://x/p> \"token here\" .");
  NeighborGraph graph(c);
  SimilarityEvaluator evaluator(c);
  ProgressiveResolver resolver(c, graph, evaluator, ProgressiveOptions{});
  const ProgressiveResult result = resolver.Resolve({});
  EXPECT_EQ(result.run.comparisons_executed, 0u);
  EXPECT_TRUE(result.run.matches.empty());
}

TEST(ResolverRobustnessTest, BudgetOfOne) {
  datagen::LodCloudConfig cfg;
  cfg.seed = 701;
  cfg.num_real_entities = 100;
  cfg.num_kbs = 2;
  auto cloud = datagen::GenerateLodCloud(cfg);
  ASSERT_TRUE(cloud.ok());
  auto c = cloud->BuildCollection();
  ASSERT_TRUE(c.ok());
  BlockCollection blocks = TokenBlocking().Build(*c);
  auto candidates = MetaBlocking().Prune(blocks, *c);
  ASSERT_GT(candidates.size(), 1u);
  NeighborGraph graph(*c);
  SimilarityEvaluator evaluator(*c);
  ProgressiveOptions opts;
  opts.matcher.budget = 1;
  ProgressiveResolver resolver(*c, graph, evaluator, opts);
  const ProgressiveResult result = resolver.Resolve(candidates);
  EXPECT_EQ(result.run.comparisons_executed, 1u);
}

// ---------------------------------------------------------------------------
// MapReduce engine stress
// ---------------------------------------------------------------------------

TEST(EngineStressTest, RandomWorkloadsMatchReference) {
  Rng rng(0xabcd);
  for (int round = 0; round < 10; ++round) {
    // Random multiset of keyed values; reference = simple accumulation.
    const size_t n = 1 + rng.Below(2000);
    std::vector<std::pair<uint32_t, uint32_t>> records(n);
    std::map<uint32_t, uint64_t> reference;
    for (auto& [k, v] : records) {
      k = static_cast<uint32_t>(rng.Below(50));
      v = static_cast<uint32_t>(rng.Below(1000));
      reference[k] += v;
    }
    mapreduce::Engine engine(1 + rng.Below(12));
    auto map_fn = [](const std::pair<uint32_t, uint32_t>& rec,
                     mapreduce::Emitter<uint32_t, uint32_t>& emitter) {
      emitter.Emit(rec.first, rec.second);
    };
    auto reduce_fn = [](const uint32_t& key, std::span<const uint32_t> vals,
                        std::vector<std::pair<uint32_t, uint64_t>>& out) {
      uint64_t total = 0;
      for (uint32_t v : vals) total += v;
      out.emplace_back(key, total);
    };
    auto result =
        engine.Run<std::pair<uint32_t, uint32_t>, uint32_t, uint32_t,
                   std::pair<uint32_t, uint64_t>>(records, map_fn, reduce_fn);
    std::map<uint32_t, uint64_t> got(result.begin(), result.end());
    EXPECT_EQ(got, reference) << "round " << round;
  }
}

TEST(EngineStressTest, ManySmallJobsOnOneEngine) {
  mapreduce::Engine engine(8);
  for (int job = 0; job < 50; ++job) {
    std::vector<int> inputs(100, job);
    auto map_fn = [](const int& v, mapreduce::Emitter<int, int>& emitter) {
      emitter.Emit(0, v);
    };
    auto reduce_fn = [](const int&, std::span<const int> vals,
                        std::vector<int>& out) {
      out.push_back(static_cast<int>(vals.size()));
    };
    auto result =
        engine.Run<int, int, int, int>(inputs, map_fn, reduce_fn);
    ASSERT_EQ(result.size(), 1u);
    EXPECT_EQ(result[0], 100);
  }
}

}  // namespace
}  // namespace minoan
