// Lifecycle tests for the resolution service: concurrent tenants must get
// byte-identical results to in-process sessions, eviction + restore must be
// invisible mid-stream, and hostile bytes on the wire must never crash the
// daemon.

#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "checkpoint_canon.h"
#include "core/session.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/session_manager.h"
#include "util/serde.h"

namespace minoan {
namespace server {
namespace {

std::string SyntheticSource(uint64_t seed, uint32_t entities = 120,
                            uint32_t kbs = 3, uint32_t center = 1) {
  return "synthetic:" + std::to_string(seed) + ":" + std::to_string(entities) +
         ":" + std::to_string(kbs) + ":" + std::to_string(center);
}

std::string FreshStateDir(const char* tag) {
  const std::string dir = std::string(::testing::TempDir()) +
                          "minoan-server-test-" + tag + "-" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// The in-process ground truth: one ResolutionSession over the same corpus
/// and options a served batch session uses, run to completion.
std::vector<MatchEvent> InProcessMatches(const std::string& source,
                                         double threshold) {
  auto collection = LoadCorpus(source);
  EXPECT_TRUE(collection.ok()) << collection.status().ToString();
  WorkflowOptions options;
  options.progressive.matcher.threshold = threshold;
  auto session = ResolutionSession::Open(*collection, options);
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  session->Step(0);
  return session->Report().progressive.run.matches;
}

void ExpectSameMatches(const std::vector<MatchEvent>& got,
                       const std::vector<MatchEvent>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].a, want[i].a) << "match " << i;
    EXPECT_EQ(got[i].b, want[i].b) << "match " << i;
    EXPECT_EQ(got[i].comparisons_done, want[i].comparisons_done)
        << "match " << i;
    EXPECT_EQ(got[i].similarity, want[i].similarity) << "match " << i;
  }
}

/// Drives one tenant end to end over its own connection: create, step in
/// uneven installments until finished, return the full match log.
std::vector<MatchEvent> DriveTenant(uint16_t port, const std::string& tenant,
                                    const std::string& source,
                                    double threshold) {
  auto client = Client::Connect("127.0.0.1", port);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  auto session = (*client)->CreateSession(tenant, SessionKind::kBatch, source,
                                          threshold);
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  // Deliberately uneven budgets: slicing must be invisible in the results.
  const uint64_t budgets[] = {37, 500, 111, 0};
  for (const uint64_t budget : budgets) {
    auto step = (*client)->Step(*session, budget);
    EXPECT_TRUE(step.ok()) << step.status().ToString();
    if (step.ok() && step->finished) break;
  }
  auto matches = (*client)->Matches(*session);
  EXPECT_TRUE(matches.ok()) << matches.status().ToString();
  EXPECT_TRUE((*client)->Close(*session).ok());
  return matches.ok() ? *matches : std::vector<MatchEvent>{};
}

void RunConcurrentTenants(uint32_t num_threads) {
  const std::string source_a = SyntheticSource(11);
  const std::string source_b = SyntheticSource(29, 90, 4, 2);
  const std::vector<MatchEvent> want_a = InProcessMatches(source_a, 0.35);
  const std::vector<MatchEvent> want_b = InProcessMatches(source_b, 0.30);
  ASSERT_FALSE(want_a.empty());
  ASSERT_FALSE(want_b.empty());

  ServerOptions options;
  options.state_dir = FreshStateDir("tenants");
  options.num_threads = num_threads;
  options.installment = 64;  // force many fair-share admissions per step
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  std::vector<MatchEvent> got_a;
  std::vector<MatchEvent> got_b;
  std::thread tenant_a([&] {
    got_a = DriveTenant((*server)->port(), "alice", source_a, 0.35);
  });
  std::thread tenant_b([&] {
    got_b = DriveTenant((*server)->port(), "bob", source_b, 0.30);
  });
  tenant_a.join();
  tenant_b.join();
  (*server)->Shutdown();

  ExpectSameMatches(got_a, want_a);
  ExpectSameMatches(got_b, want_b);
}

TEST(ServerTest, ConcurrentTenantsMatchInProcessSingleThread) {
  RunConcurrentTenants(1);
}

TEST(ServerTest, ConcurrentTenantsMatchInProcessFourThreads) {
  RunConcurrentTenants(4);
}

TEST(ServerTest, EvictRestoreMidStreamIsInvisible) {
  // Big enough that a 50-comparison first step cannot finish the run.
  const std::string source = SyntheticSource(7, 400);
  const std::vector<MatchEvent> want = InProcessMatches(source, 0.35);
  ASSERT_FALSE(want.empty());

  ServerOptions options;
  options.state_dir = FreshStateDir("evict");
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto session =
      (*client)->CreateSession("carol", SessionKind::kBatch, source, 0.35);
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  auto first = (*client)->Step(*session, 50);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_FALSE(first->finished);

  // Forcibly evict between two steps of one stream; the next request must
  // restore from the checkpoint transparently.
  ASSERT_TRUE((*server)->sessions().Evict(*session).ok());
  EXPECT_EQ((*server)->sessions().live_sessions(), 0u);

  auto second = (*client)->Step(*session, 0);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second->finished);
  EXPECT_EQ((*server)->sessions().live_sessions(), 1u);

  auto matches = (*client)->Matches(*session);
  ASSERT_TRUE(matches.ok()) << matches.status().ToString();
  ExpectSameMatches(*matches, want);
  (*server)->Shutdown();
}

TEST(ServerTest, OnlineEvictRestoreMatchesUninterruptedRun) {
  // Two servers, same request sequence; one is force-evicted mid-stream.
  // Every reply after the eviction must be identical.
  const std::string doc =
      "<http://a.org/e1> <http://xmlns.com/foaf/0.1/name> \"Ada "
      "Lovelace\" .\n"
      "<http://a.org/e1> <http://a.org/city> \"London\" .\n"
      "<http://b.org/e1> <http://xmlns.com/foaf/0.1/name> \"Ada "
      "Lovelace\" .\n"
      "<http://b.org/e1> <http://b.org/town> \"London\" .\n"
      "<http://b.org/e2> <http://xmlns.com/foaf/0.1/name> \"Alan "
      "Turing\" .\n";

  struct Run {
    std::unique_ptr<Server> server;
    std::unique_ptr<Client> client;
    uint64_t session = 0;
  };
  auto start = [&](const char* tag) {
    Run run;
    ServerOptions options;
    options.state_dir = FreshStateDir(tag);
    auto server = Server::Start(options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    run.server = std::move(server).value();
    auto client = Client::Connect("127.0.0.1", run.server->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    run.client = std::move(client).value();
    auto session =
        run.client->CreateSession("dave", SessionKind::kOnline, "", 0.2);
    EXPECT_TRUE(session.ok()) << session.status().ToString();
    run.session = *session;
    return run;
  };

  Run plain = start("online-plain");
  Run evicted = start("online-evict");
  std::vector<EntityId> plain_ids;
  for (Run* run : {&plain, &evicted}) {
    auto ids = run->client->Ingest(run->session, "cloud", doc);
    ASSERT_TRUE(ids.ok()) << ids.status().ToString();
    if (run == &plain) {
      plain_ids = *ids;
    } else {
      EXPECT_EQ(*ids, plain_ids);
    }
    auto step = run->client->ResolveBudget(run->session, 2);
    ASSERT_TRUE(step.ok()) << step.status().ToString();
  }

  ASSERT_TRUE(evicted.server->sessions().Evict(evicted.session).ok());

  for (Run* run : {&plain, &evicted}) {
    auto step = run->client->ResolveBudget(run->session, 0);
    ASSERT_TRUE(step.ok()) << step.status().ToString();
  }
  ASSERT_FALSE(plain_ids.empty());
  auto plain_hits = plain.client->Query(plain.session, plain_ids[0], 4);
  auto evicted_hits = evicted.client->Query(evicted.session, plain_ids[0], 4);
  ASSERT_TRUE(plain_hits.ok()) << plain_hits.status().ToString();
  ASSERT_TRUE(evicted_hits.ok()) << evicted_hits.status().ToString();
  ASSERT_EQ(plain_hits->size(), evicted_hits->size());
  for (size_t i = 0; i < plain_hits->size(); ++i) {
    EXPECT_EQ((*plain_hits)[i].id, (*evicted_hits)[i].id);
    EXPECT_EQ((*plain_hits)[i].similarity, (*evicted_hits)[i].similarity);
    EXPECT_EQ((*plain_hits)[i].matched, (*evicted_hits)[i].matched);
  }
  auto plain_matches = plain.client->Matches(plain.session);
  auto evicted_matches = evicted.client->Matches(evicted.session);
  ASSERT_TRUE(plain_matches.ok());
  ASSERT_TRUE(evicted_matches.ok());
  ExpectSameMatches(*evicted_matches, *plain_matches);
  plain.server->Shutdown();
  evicted.server->Shutdown();
}

TEST(ServerTest, LruCapEvictsAndRestoresTransparently) {
  ServerOptions options;
  options.state_dir = FreshStateDir("cap");
  options.max_sessions = 1;
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const std::string source = SyntheticSource(3);
  auto first =
      (*client)->CreateSession("erin", SessionKind::kBatch, source, 0.35);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second =
      (*client)->CreateSession("erin", SessionKind::kBatch, source, 0.35);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  // Cap 1: creating the second session evicted the first...
  EXPECT_EQ((*server)->sessions().live_sessions(), 1u);
  EXPECT_EQ((*server)->sessions().num_sessions(), 2u);
  // ...but both still answer (the first restores on touch, evicting the
  // other right back).
  for (const uint64_t id : {*first, *second}) {
    auto step = (*client)->Step(id, 0);
    ASSERT_TRUE(step.ok()) << step.status().ToString();
    EXPECT_TRUE(step->finished);
  }
  (*server)->Shutdown();
}

/// Raw socket for hostile-bytes tests — the typed Client refuses to send
/// malformed frames, so speak TCP directly.
class RawConnection {
 public:
  explicit RawConnection(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~RawConnection() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  void Send(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return;  // server already dropped us — fine
      sent += static_cast<size_t>(n);
    }
  }

  /// Signals end-of-requests, then reads until the server closes its end;
  /// returns everything received. (Without the write-side shutdown the
  /// server would rightly keep a healthy connection open forever.)
  std::string DrainToEof() {
    ::shutdown(fd_, SHUT_WR);
    std::string all;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return all;
      all.append(buf, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

std::string FrameBytes(uint16_t id, const std::string& body) {
  std::ostringstream out;
  serde::WriteU32(out, static_cast<uint32_t>(3 + body.size()));
  serde::WriteU8(out, kProtocolVersion);
  serde::WriteU16(out, id);
  out << body;
  return out.str();
}

TEST(ServerTest, MalformedFramesAreRejectedWithoutCrashing) {
  ServerOptions options;
  options.state_dir = FreshStateDir("fuzz");
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const uint16_t port = (*server)->port();

  const auto expect_still_alive = [&] {
    auto probe = Client::Connect("127.0.0.1", port);
    ASSERT_TRUE(probe.ok()) << probe.status().ToString();
    EXPECT_TRUE((*probe)->Ping().ok());
  };

  {  // Oversized length prefix: must be refused, not allocated.
    RawConnection conn(port);
    ASSERT_TRUE(conn.connected());
    std::ostringstream out;
    serde::WriteU32(out, kMaxFrameBytes + 1);
    conn.Send(out.str());
    conn.DrainToEof();
    expect_still_alive();
  }
  {  // Length prefix too small to hold version + id.
    RawConnection conn(port);
    std::ostringstream out;
    serde::WriteU32(out, 2);
    out << "xx";
    conn.Send(out.str());
    conn.DrainToEof();
    expect_still_alive();
  }
  {  // Truncated frame: prefix promises more bytes than ever arrive.
    RawConnection conn(port);
    std::ostringstream out;
    serde::WriteU32(out, 100);
    out << "short";
    conn.Send(out.str());
    // Close without sending the rest (the destructor closes).
  }
  expect_still_alive();
  {  // Wrong protocol version.
    RawConnection conn(port);
    std::ostringstream out;
    serde::WriteU32(out, 3);
    serde::WriteU8(out, 99);
    serde::WriteU16(out, 11);  // Ping
    conn.Send(out.str());
    conn.DrainToEof();
    expect_still_alive();
  }
  {  // Unknown message id: an error reply, and the connection survives.
    RawConnection conn(port);
    conn.Send(FrameBytes(0x7777, ""));
    conn.Send(FrameBytes(static_cast<uint16_t>(MessageId::kPing), ""));
    const std::string replies = conn.DrainToEof();
    EXPECT_GE(replies.size(), 8u);  // two framed replies came back
  }
  {  // Well-framed requests with truncated bodies, for every message id.
    for (uint16_t id = 0; id <= 12; ++id) {
      RawConnection conn(port);
      conn.Send(FrameBytes(id, "\x01"));
      conn.DrainToEof();
    }
    expect_still_alive();
  }
  {  // Deterministic garbage: random bytes must never take the daemon down.
    std::mt19937 rng(20260807);
    for (int round = 0; round < 64; ++round) {
      RawConnection conn(port);
      std::string junk(1 + rng() % 96, '\0');
      for (char& c : junk) c = static_cast<char>(rng());
      conn.Send(junk);
    }
    expect_still_alive();
  }
  (*server)->Shutdown();
}

TEST(ServerTest, ServerSideErrorsLeaveTheConnectionUsable) {
  ServerOptions options;
  options.state_dir = FreshStateDir("errors");
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // Unknown session.
  EXPECT_FALSE((*client)->Step(999, 10).ok());
  // Bad corpus source.
  EXPECT_FALSE((*client)
                   ->CreateSession("t", SessionKind::kBatch, "nope:", 0.35)
                   .ok());
  // Kind mismatch: batch session asked for an online request.
  auto session = (*client)->CreateSession("t", SessionKind::kBatch,
                                          SyntheticSource(5), 0.35);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_FALSE((*client)->ResolveBudget(*session, 10).ok());
  EXPECT_FALSE((*client)->Query(*session, 0, 3).ok());
  // The connection is still fine after all of the above.
  auto step = (*client)->Step(*session, 0);
  EXPECT_TRUE(step.ok()) << step.status().ToString();
  EXPECT_TRUE((*client)->Ping().ok());
  (*server)->Shutdown();
}

// ---------------------------------------------------------------------------
// The live observability plane: kStats v2, per-tenant scoping, exporter,
// event log — and its out-of-band parity guarantee.
// ---------------------------------------------------------------------------

TEST(ServerStatsTest, StatsV2TwoTenantBreakdownSumsToProcessTotals) {
  // The breakdown reconciles against the process registry, so start this
  // test from zeroed counters (names survive; other tests in this binary
  // run sequentially).
  obs::MetricsRegistry::Default().ResetAll();

  const std::string source_a = SyntheticSource(41);
  const std::string source_b = SyntheticSource(43, 90, 4, 2);
  ServerOptions options;
  options.state_dir = FreshStateDir("stats-v2");
  options.installment = 64;
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  std::thread tenant_a(
      [&] { DriveTenant((*server)->port(), "alice", source_a, 0.35); });
  std::thread tenant_b(
      [&] { DriveTenant((*server)->port(), "bob", source_b, 0.30); });
  tenant_a.join();
  tenant_b.join();

  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  // The v1 reply still works on the same connection as v2. Both tenants
  // closed their sessions, so the session-store counts read zero — the
  // tenant breakdown below still remembers their lifetime totals.
  auto v1 = (*client)->Stats();
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  EXPECT_EQ(v1->live_sessions, 0u);

  auto full = (*client)->StatsFull();
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_EQ(full->live_sessions, v1->live_sessions);
  EXPECT_EQ(full->total_sessions, v1->total_sessions);
  ASSERT_EQ(full->tenants.size(), 2u);
  EXPECT_EQ(full->tenants[0].tenant, "alice");
  EXPECT_EQ(full->tenants[1].tenant, "bob");

  uint64_t sum_sessions = 0, sum_comparisons = 0, sum_matches = 0;
  for (const TenantStatsEntry& tenant : full->tenants) {
    EXPECT_GT(tenant.sessions, 0u) << tenant.tenant;
    EXPECT_GT(tenant.requests, 0u) << tenant.tenant;
    EXPECT_GT(tenant.comparisons, 0u) << tenant.tenant;
    EXPECT_GT(tenant.matches, 0u) << tenant.tenant;
    EXPECT_LE(tenant.p50_request_micros, tenant.p95_request_micros)
        << tenant.tenant;
    EXPECT_LE(tenant.p95_request_micros, tenant.p99_request_micros)
        << tenant.tenant;
    sum_sessions += tenant.sessions;
    sum_comparisons += tenant.comparisons;
    sum_matches += tenant.matches;
  }
  // The dual-write contract: tenant shadows and process counters are
  // incremented at the same instrumentation site, so the sums reconcile
  // exactly — not approximately.
  EXPECT_EQ(sum_sessions, full->CounterValue("server.sessions.created"));
  EXPECT_EQ(sum_comparisons, full->CounterValue("server.comparisons"));
  EXPECT_EQ(sum_matches, full->CounterValue("server.matches"));
  EXPECT_GT(sum_comparisons, 0u);

  // The registry snapshot came through: request counters and the latency
  // histogram with monotone quantiles.
  EXPECT_GT(full->CounterValue("server.requests.create"), 0u);
  bool saw_request_micros = false;
  for (const auto& [name, histogram] : full->histograms) {
    if (name != "server.request_micros") continue;
    saw_request_micros = true;
    EXPECT_GT(histogram.count, 0u);
    EXPECT_LE(histogram.p50, histogram.p95);
    EXPECT_LE(histogram.p95, histogram.p99);
    EXPECT_GE(histogram.p50, static_cast<double>(histogram.min));
    EXPECT_LE(histogram.p99, static_cast<double>(histogram.max));
  }
  EXPECT_TRUE(saw_request_micros);
  (*server)->Shutdown();
}

TEST(ServerStatsTest, LegacyStatsWireReplyIsUnchanged) {
  ServerOptions options;
  options.state_dir = FreshStateDir("stats-v1-wire");
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  // An old client sends kStats with an empty body and must get exactly the
  // legacy reply: ok status (u8 0 + empty-string u64 length) + two u64
  // session counts = 25 body bytes, framed as 4 (length) + 1 (version) +
  // 2 (id) ahead of it.
  RawConnection conn((*server)->port());
  ASSERT_TRUE(conn.connected());
  conn.Send(FrameBytes(static_cast<uint16_t>(MessageId::kStats), ""));
  const std::string reply = conn.DrainToEof();
  ASSERT_EQ(reply.size(), 32u);
  std::istringstream in(reply);
  uint32_t frame_len = 0;
  ASSERT_TRUE(serde::ReadU32(in, frame_len));
  EXPECT_EQ(frame_len, 28u);

  // An unknown stats-body discriminator is an error reply, not a crash.
  RawConnection bad((*server)->port());
  bad.Send(FrameBytes(static_cast<uint16_t>(MessageId::kStats), "\x09"));
  EXPECT_GE(bad.DrainToEof().size(), 8u);

  auto probe = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(probe.ok());
  EXPECT_TRUE((*probe)->Ping().ok());
  (*server)->Shutdown();
}

TEST(ServerStatsTest, ExporterWritesRollingSnapshotsAndEventLog) {
  const std::string dir = FreshStateDir("exporter");
  ServerOptions options;
  options.state_dir = dir;
  options.stats_path = dir + "/stats.json";
  options.stats_every_seconds = 0.02;
  options.event_log_path = dir + "/events.jsonl";
  options.slow_request_millis = 0.001;  // 1us: every request is "slow"
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto session = (*client)->CreateSession("frank", SessionKind::kBatch,
                                          SyntheticSource(13, 200), 0.35);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto first = (*client)->Step(*session, 40);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE((*server)->sessions().Evict(*session).ok());
  auto second = (*client)->Step(*session, 0);  // transparent restore
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  // The rolling exporter must produce a complete, never-torn snapshot
  // while the server keeps running.
  std::string rolling;
  for (int attempt = 0; attempt < 100; ++attempt) {
    std::ifstream in(options.stats_path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    rolling = buf.str();
    if (!rolling.empty()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_FALSE(rolling.empty()) << "exporter never wrote " << options.stats_path;
  EXPECT_NE(rolling.find("\"schema\":\"minoan-stats-v1\""), std::string::npos);
  EXPECT_NE(rolling.find("\"tenants\":{\"frank\":"), std::string::npos);
  EXPECT_EQ(rolling.back(), '\n');  // complete file, not a torn prefix

  (*server)->Shutdown();  // writes the final authoritative snapshots

  std::ifstream events_in(options.event_log_path, std::ios::binary);
  std::ostringstream events_buf;
  events_buf << events_in.rdbuf();
  const std::string events = events_buf.str();
  EXPECT_NE(events.find("\"kind\":\"session_evicted\""), std::string::npos);
  EXPECT_NE(events.find("\"kind\":\"session_restored\""), std::string::npos);
  EXPECT_NE(events.find("\"kind\":\"slow_request\""), std::string::npos);
  EXPECT_NE(events.find("\"tenant\":\"frank\""), std::string::npos);
  // Every line is one self-contained JSON object.
  std::istringstream lines(events);
  std::string line;
  size_t num_lines = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++num_lines;
  }
  EXPECT_GT(num_lines, 0u);
}

/// One served run of two tenants with uneven step budgets, returning every
/// tenant-visible byte: the match stream, the rendered links document, and
/// the (canonicalized) checkpoint file.
struct ServedArtifacts {
  std::map<std::string, std::vector<MatchEvent>> matches;
  std::map<std::string, std::string> links;
  std::map<std::string, std::string> checkpoints;
};

ServedArtifacts RunServed(uint32_t num_threads, bool observed) {
  ServerOptions options;
  options.state_dir =
      FreshStateDir(observed ? "parity-observed" : "parity-plain");
  options.num_threads = num_threads;
  options.installment = 64;
  if (observed) {
    options.stats_path = options.state_dir + "/stats.json";
    options.stats_every_seconds = 0.01;  // exporter races the requests
    options.enable_trace = true;
    options.event_log_path = options.state_dir + "/events.jsonl";
    options.slow_request_millis = 0.001;  // event log fires constantly
  }
  auto server = Server::Start(options);
  EXPECT_TRUE(server.ok()) << server.status().ToString();

  ServedArtifacts artifacts;
  std::mutex mu;
  const auto drive = [&](const std::string& tenant, uint64_t seed,
                         double threshold) {
    auto client = Client::Connect("127.0.0.1", (*server)->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    auto session = (*client)->CreateSession(
        tenant, SessionKind::kBatch, SyntheticSource(seed, 150), threshold);
    EXPECT_TRUE(session.ok()) << session.status().ToString();
    for (const uint64_t budget : {uint64_t{53}, uint64_t{700}, uint64_t{0}}) {
      auto step = (*client)->Step(*session, budget);
      EXPECT_TRUE(step.ok()) << step.status().ToString();
      if (step.ok() && step->finished) break;
    }
    auto matches = (*client)->Matches(*session);
    EXPECT_TRUE(matches.ok()) << matches.status().ToString();
    auto links = (*client)->Links(*session);
    EXPECT_TRUE(links.ok()) << links.status().ToString();
    auto bytes = (*client)->Checkpoint(*session);
    EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
    std::ifstream ckpt_in(
        options.state_dir + "/session-" + std::to_string(*session) + ".ckpt",
        std::ios::binary);
    std::ostringstream ckpt;
    ckpt << ckpt_in.rdbuf();

    std::lock_guard<std::mutex> lock(mu);
    artifacts.matches[tenant] = matches.ok() ? *matches
                                             : std::vector<MatchEvent>{};
    artifacts.links[tenant] = links.ok() ? *links : "";
    artifacts.checkpoints[tenant] =
        testutil::CanonicalizeCheckpoint(ckpt.str());
  };
  std::thread tenant_a([&] { drive("alice", 61, 0.35); });
  std::thread tenant_b([&] { drive("bob", 67, 0.30); });
  tenant_a.join();
  tenant_b.join();

  if (observed) {
    // Guard against silently comparing two unobserved runs: the plane must
    // actually have recorded traffic.
    EXPECT_GT((*server)->TenantBreakdowns().size(), 0u);
    EXPECT_GT((*server)->events().size(), 0u);
    EXPECT_NE((*server)->trace(), nullptr);
  }
  (*server)->Shutdown();
  return artifacts;
}

void RunServedParity(uint32_t num_threads) {
  SCOPED_TRACE("num_threads=" + std::to_string(num_threads));
  const ServedArtifacts plain = RunServed(num_threads, /*observed=*/false);
  const ServedArtifacts observed = RunServed(num_threads, /*observed=*/true);
  for (const std::string tenant : {"alice", "bob"}) {
    SCOPED_TRACE(tenant);
    ExpectSameMatches(observed.matches.at(tenant), plain.matches.at(tenant));
    EXPECT_EQ(observed.links.at(tenant), plain.links.at(tenant));
    ASSERT_FALSE(plain.checkpoints.at(tenant).empty());
    EXPECT_EQ(observed.checkpoints.at(tenant), plain.checkpoints.at(tenant));
  }
}

TEST(ObsParityTest, ServedResultsUnaffectedByObservabilityPlane1Thread) {
  RunServedParity(1);
}

TEST(ObsParityTest, ServedResultsUnaffectedByObservabilityPlane4Threads) {
  RunServedParity(4);
}

TEST(FairShareTest, ChargesAndAdmitsByVirtualTime) {
  FairShare gate(1);
  gate.Acquire("heavy");
  gate.Release("heavy", 1000);
  EXPECT_EQ(gate.TenantCost("heavy"), 1000u);
  // Uncontended re-acquire works and keeps accumulating.
  gate.Acquire("heavy");
  gate.Release("heavy", 50);
  EXPECT_EQ(gate.TenantCost("heavy"), 1050u);
  EXPECT_EQ(gate.TenantCost("light"), 0u);
}

TEST(FairShareTest, ManyTenantsDrainWithoutDeadlock) {
  FairShare gate(2);
  std::vector<std::thread> tenants;
  std::atomic<uint64_t> done{0};
  for (int t = 0; t < 8; ++t) {
    tenants.emplace_back([&gate, &done, t] {
      const std::string name = "tenant-" + std::to_string(t);
      for (int i = 0; i < 25; ++i) {
        gate.Acquire(name);
        gate.Release(name, 10);
        done.fetch_add(1);
      }
    });
  }
  for (std::thread& t : tenants) t.join();
  EXPECT_EQ(done.load(), 200u);
}

}  // namespace
}  // namespace server
}  // namespace minoan
