// Tests for the pay-as-you-go Session API (core/session.h): budgeted
// stepping parity with the one-shot run, checkpoint/restore equivalence,
// observer callback ordering, and options validation.
//
// The central invariants, per the Session contract:
//   * Step(n/2) twice ≡ Step(n) once ≡ MinoanEr::Run — byte-for-byte on
//     match sequence, report counters, and benefit trace;
//   * checkpoint → restore → step reproduces the uninterrupted run exactly.

#include <bit>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/minoan_er.h"
#include "core/session.h"
#include "datagen/lod_generator.h"
#include "gtest/gtest.h"
#include "util/hash.h"

namespace minoan {
namespace {

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

EntityCollection MakeCloud(uint64_t seed, bool periphery_heavy = false) {
  datagen::LodCloudConfig cfg;
  cfg.seed = seed;
  cfg.num_real_entities = 220;
  cfg.num_kbs = 4;
  cfg.center_kbs = periphery_heavy ? 1 : 2;
  if (periphery_heavy) cfg.periphery_token_overlap = 0.2;
  auto cloud = datagen::GenerateLodCloud(cfg);
  EXPECT_TRUE(cloud.ok());
  auto collection = cloud->BuildCollection();
  EXPECT_TRUE(collection.ok());
  return std::move(collection).value();
}

WorkflowOptions DefaultOptions() {
  WorkflowOptions options;
  options.progressive.matcher.threshold = 0.3;
  return options;
}

/// Strict equality of two progressive results: the match sequence (ids,
/// stamps, and similarity BITS), the benefit trace bits, and every counter.
void ExpectSameProgressive(const ProgressiveResult& a,
                           const ProgressiveResult& b) {
  EXPECT_EQ(a.run.comparisons_executed, b.run.comparisons_executed);
  ASSERT_EQ(a.run.matches.size(), b.run.matches.size());
  for (size_t i = 0; i < a.run.matches.size(); ++i) {
    EXPECT_EQ(a.run.matches[i].a, b.run.matches[i].a) << "match " << i;
    EXPECT_EQ(a.run.matches[i].b, b.run.matches[i].b) << "match " << i;
    EXPECT_EQ(a.run.matches[i].comparisons_done,
              b.run.matches[i].comparisons_done)
        << "match " << i;
    EXPECT_EQ(std::bit_cast<uint64_t>(a.run.matches[i].similarity),
              std::bit_cast<uint64_t>(b.run.matches[i].similarity))
        << "match " << i;
  }
  ASSERT_EQ(a.benefit_trace.size(), b.benefit_trace.size());
  for (size_t i = 0; i < a.benefit_trace.size(); ++i) {
    EXPECT_EQ(std::bit_cast<uint64_t>(a.benefit_trace[i]),
              std::bit_cast<uint64_t>(b.benefit_trace[i]))
        << "trace " << i;
  }
  EXPECT_EQ(a.discovered_pairs, b.discovered_pairs);
  EXPECT_EQ(a.discovered_matches, b.discovered_matches);
  EXPECT_EQ(a.evidence_assisted_matches, b.evidence_assisted_matches);
  EXPECT_EQ(a.scheduler_pushes, b.scheduler_pushes);
}

void ExpectSameReport(const ResolutionReport& a, const ResolutionReport& b) {
  EXPECT_EQ(a.blocks_built, b.blocks_built);
  EXPECT_EQ(a.blocks_after_cleaning, b.blocks_after_cleaning);
  EXPECT_EQ(a.comparisons_before_meta, b.comparisons_before_meta);
  EXPECT_EQ(a.comparisons_after_meta, b.comparisons_after_meta);
  EXPECT_EQ(a.meta_stats.graph_edges, b.meta_stats.graph_edges);
  EXPECT_EQ(a.meta_stats.retained_edges, b.meta_stats.retained_edges);
  ASSERT_EQ(a.phases.size(), b.phases.size());
  for (size_t i = 0; i < a.phases.size(); ++i) {
    EXPECT_EQ(a.phases[i].name, b.phases[i].name);
    EXPECT_EQ(a.phases[i].output_cardinality, b.phases[i].output_cardinality);
  }
  ExpectSameProgressive(a.progressive, b.progressive);
}

// ---------------------------------------------------------------------------
// Step-split parity
// ---------------------------------------------------------------------------

TEST(SessionTest, OneShotStepEqualsLegacyRun) {
  const EntityCollection collection = MakeCloud(311);
  const WorkflowOptions options = DefaultOptions();

  auto legacy = MinoanEr(options).Run(collection);
  ASSERT_TRUE(legacy.ok());

  auto session = ResolutionSession::Open(collection, options);
  ASSERT_TRUE(session.ok());
  const StepResult step = session->Step(0);
  EXPECT_TRUE(step.exhausted);
  EXPECT_TRUE(session->exhausted());
  ExpectSameReport(*legacy, session->Report());
}

TEST(SessionTest, StepSplitParity) {
  const EntityCollection collection = MakeCloud(313, /*periphery_heavy=*/true);
  const WorkflowOptions options = DefaultOptions();

  auto whole = ResolutionSession::Open(collection, options);
  ASSERT_TRUE(whole.ok());
  whole->Step(0);

  // The same run bought in installments of 97 comparisons: the concatenated
  // step outputs and the final report must be byte-identical.
  auto split = ResolutionSession::Open(collection, options);
  ASSERT_TRUE(split.ok());
  uint64_t total_comparisons = 0;
  std::vector<MatchEvent> streamed;
  while (!split->exhausted()) {
    const StepResult step = split->Step(97);
    total_comparisons += step.comparisons;
    streamed.insert(streamed.end(), step.matches.begin(), step.matches.end());
    ASSERT_LE(step.comparisons, 97u);
  }
  EXPECT_EQ(total_comparisons, whole->comparisons_spent());
  ExpectSameReport(whole->Report(), split->Report());

  // Per-step match deltas concatenate to the full sequence.
  const ResolutionReport report = split->Report();
  ASSERT_EQ(streamed.size(), report.progressive.run.matches.size());
  for (size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i].a, report.progressive.run.matches[i].a);
    EXPECT_EQ(streamed[i].b, report.progressive.run.matches[i].b);
  }
}

TEST(SessionTest, StepSplitParityWithSeeds) {
  const EntityCollection collection = MakeCloud(317);
  ASSERT_GT(collection.same_as_links().size(), 0u);
  WorkflowOptions options = DefaultOptions();
  options.use_same_as_seeds = true;

  auto legacy = MinoanEr(options).Run(collection);
  ASSERT_TRUE(legacy.ok());

  auto split = ResolutionSession::Open(collection, options);
  ASSERT_TRUE(split.ok());
  while (!split->exhausted()) split->Step(61);
  ExpectSameReport(*legacy, split->Report());
}

TEST(SessionTest, OverallBudgetCapsStepping) {
  const EntityCollection collection = MakeCloud(331);
  WorkflowOptions options = DefaultOptions();
  options.progressive.matcher.budget = 50;

  auto session = ResolutionSession::Open(collection, options);
  ASSERT_TRUE(session.ok());
  const StepResult first = session->Step(30);
  EXPECT_EQ(first.comparisons, 30u);
  const StepResult second = session->Step(30);
  EXPECT_EQ(second.comparisons, 20u) << "workflow budget must cap the step";
  EXPECT_FALSE(second.exhausted) << "budget-capped is not queue-drained";
  const StepResult third = session->Step(30);
  EXPECT_EQ(third.comparisons, 0u);
  EXPECT_EQ(session->comparisons_spent(), 50u);
  EXPECT_TRUE(session->finished())
      << "budget consumption must terminate while(!finished()) loops";

  auto legacy = MinoanEr(options).Run(collection);
  ASSERT_TRUE(legacy.ok());
  ExpectSameReport(*legacy, session->Report());
}

TEST(SessionTest, SteppingPastExhaustionIsANoOp) {
  const EntityCollection collection = MakeCloud(337);
  auto session = ResolutionSession::Open(collection, DefaultOptions());
  ASSERT_TRUE(session.ok());
  session->Step(0);
  ASSERT_TRUE(session->exhausted());
  EXPECT_TRUE(session->finished());
  const uint64_t spent = session->comparisons_spent();
  const StepResult extra = session->Step(100);
  EXPECT_EQ(extra.comparisons, 0u);
  EXPECT_TRUE(extra.exhausted);
  EXPECT_TRUE(extra.matches.empty());
  EXPECT_EQ(session->comparisons_spent(), spent);
}

// ---------------------------------------------------------------------------
// Checkpoint / restore
// ---------------------------------------------------------------------------

TEST(SessionTest, CheckpointRestoreReproducesUninterruptedRun) {
  const EntityCollection collection = MakeCloud(347, /*periphery_heavy=*/true);
  const WorkflowOptions options = DefaultOptions();

  auto uninterrupted = ResolutionSession::Open(collection, options);
  ASSERT_TRUE(uninterrupted.ok());
  uninterrupted->Step(0);

  // Interrupt mid-run (mid-evidence, mid-schedule), serialize, restore in a
  // "new process", finish. Every byte of the outcome must agree.
  const uint64_t total = uninterrupted->comparisons_spent();
  ASSERT_GT(total, 10u);
  auto session = ResolutionSession::Open(collection, options);
  ASSERT_TRUE(session.ok());
  session->Step(total / 2);
  ASSERT_FALSE(session->exhausted());
  std::stringstream state;
  ASSERT_TRUE(session->Checkpoint(state).ok());

  auto restored = ResolutionSession::Restore(collection, options, state);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->comparisons_spent(), total / 2);
  restored->Step(0);
  ExpectSameReport(uninterrupted->Report(), restored->Report());
}

TEST(SessionTest, CheckpointEveryFewStepsStaysExact) {
  const EntityCollection collection = MakeCloud(349);
  WorkflowOptions options = DefaultOptions();
  options.use_same_as_seeds = true;  // exercise seed replay on restore

  auto uninterrupted = ResolutionSession::Open(collection, options);
  ASSERT_TRUE(uninterrupted.ok());
  uninterrupted->Step(0);

  auto session = ResolutionSession::Open(collection, options);
  ASSERT_TRUE(session.ok());
  int round_trips = 0;
  while (!session->exhausted()) {
    session->Step(71);
    std::stringstream state;
    ASSERT_TRUE(session->Checkpoint(state).ok());
    auto restored = ResolutionSession::Restore(collection, options, state);
    ASSERT_TRUE(restored.ok()) << restored.status();
    session = std::move(restored);
    ++round_trips;
    ASSERT_LT(round_trips, 10000) << "runaway loop";
  }
  EXPECT_GT(round_trips, 1);
  ExpectSameReport(uninterrupted->Report(), session->Report());
}

TEST(SessionTest, RestoreRejectsDifferentCollection) {
  const EntityCollection collection = MakeCloud(353);
  const EntityCollection other = MakeCloud(359);
  const WorkflowOptions options = DefaultOptions();
  auto session = ResolutionSession::Open(collection, options);
  ASSERT_TRUE(session.ok());
  session->Step(50);
  std::stringstream state;
  ASSERT_TRUE(session->Checkpoint(state).ok());
  auto restored = ResolutionSession::Restore(other, options, state);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(restored.status().message().find("collection"), std::string::npos);
}

TEST(SessionTest, RestoreRejectsDifferentOptions) {
  const EntityCollection collection = MakeCloud(367);
  const WorkflowOptions options = DefaultOptions();
  auto session = ResolutionSession::Open(collection, options);
  ASSERT_TRUE(session.ok());
  session->Step(50);
  std::stringstream state;
  ASSERT_TRUE(session->Checkpoint(state).ok());
  WorkflowOptions changed = options;
  changed.progressive.matcher.threshold = 0.9;
  auto restored = ResolutionSession::Restore(collection, changed, state);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(restored.status().message().find("options"), std::string::npos);
}

TEST(SessionTest, RestoreRejectsGarbageAndTruncation) {
  const EntityCollection collection = MakeCloud(373);
  const WorkflowOptions options = DefaultOptions();
  {
    std::stringstream garbage("definitely not a checkpoint");
    auto restored = ResolutionSession::Restore(collection, options, garbage);
    EXPECT_FALSE(restored.ok());
  }
  {
    auto session = ResolutionSession::Open(collection, options);
    ASSERT_TRUE(session.ok());
    session->Step(40);
    std::stringstream state;
    ASSERT_TRUE(session->Checkpoint(state).ok());
    const std::string bytes = state.str();
    // Every strict prefix must be rejected cleanly (no crash, no partial
    // session). Sample a few cut points including the tail.
    for (const size_t cut :
         {size_t{0}, size_t{5}, bytes.size() / 3, bytes.size() - 1}) {
      std::stringstream truncated(bytes.substr(0, cut));
      auto restored =
          ResolutionSession::Restore(collection, options, truncated);
      EXPECT_FALSE(restored.ok()) << "cut at " << cut;
    }
    // A bit-flipped body must never produce a session that indexes out of
    // bounds when stepped: either the restore is rejected, or the mutation
    // hit a value field and the session still steps within entity range.
    // (Out-of-range entity ids in pair keys are rejected at parse time.)
    for (const size_t flip_at :
         {bytes.size() / 2, bytes.size() / 2 + 9, bytes.size() - 30}) {
      std::string mutated = bytes;
      mutated[flip_at] = static_cast<char>(mutated[flip_at] ^ 0x80);
      std::stringstream stream(mutated);
      auto restored = ResolutionSession::Restore(collection, options, stream);
      if (restored.ok()) restored->Step(100);  // must not crash
    }
  }
}

// ---------------------------------------------------------------------------
// Observer
// ---------------------------------------------------------------------------

class RecordingObserver : public MatchObserver {
 public:
  void OnPhase(const PhaseStats& phase) override {
    phases.push_back(phase.name);
    phases_seen_before_first_match =
        matches.empty() ? phases.size() : phases_seen_before_first_match;
  }
  void OnMatch(const MatchEvent& event) override { matches.push_back(event); }

  std::vector<std::string> phases;
  std::vector<MatchEvent> matches;
  size_t phases_seen_before_first_match = 0;
};

TEST(SessionTest, ObserverStreamsPhasesThenMatchesInOrder) {
  const EntityCollection collection = MakeCloud(379);
  RecordingObserver observer;
  auto session =
      ResolutionSession::Open(collection, DefaultOptions(), &observer);
  ASSERT_TRUE(session.ok());

  const std::vector<std::string> expected_phases = {
      "blocking", "block-cleaning", "meta-blocking", "graph+evaluator"};
  EXPECT_EQ(observer.phases, expected_phases);
  EXPECT_TRUE(observer.matches.empty()) << "no comparisons spent yet";

  while (!session->exhausted()) session->Step(83);

  const ResolutionReport report = session->Report();
  ASSERT_EQ(observer.matches.size(), report.progressive.run.matches.size());
  for (size_t i = 0; i < observer.matches.size(); ++i) {
    EXPECT_EQ(observer.matches[i].a, report.progressive.run.matches[i].a);
    EXPECT_EQ(observer.matches[i].b, report.progressive.run.matches[i].b);
    EXPECT_EQ(observer.matches[i].comparisons_done,
              report.progressive.run.matches[i].comparisons_done);
    if (i > 0) {
      EXPECT_GE(observer.matches[i].comparisons_done,
                observer.matches[i - 1].comparisons_done)
          << "matches must stream in discovery order";
    }
  }
}

// ---------------------------------------------------------------------------
// Options validation
// ---------------------------------------------------------------------------

TEST(SessionTest, ValidateAcceptsDefaultsAndBoundaries) {
  EXPECT_TRUE(WorkflowOptions{}.Validate().ok());
  WorkflowOptions options;
  options.filter_ratio = 1.0;  // documented: 1 disables filtering
  options.num_threads = 0;     // documented: hardware concurrency
  options.progressive.matcher.threshold = 0.0;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(SessionTest, ValidateRejectsBadFilterRatio) {
  for (const double bad : {0.0, -2.0, 1.5}) {
    WorkflowOptions options;
    options.filter_ratio = bad;
    const Status status = options.Validate();
    ASSERT_FALSE(status.ok()) << bad;
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find("filter_ratio"), std::string::npos);
    // Open must refuse the same way, not crash mid-pipeline.
    const EntityCollection collection = MakeCloud(383);
    EXPECT_FALSE(ResolutionSession::Open(collection, options).ok());
  }
}

TEST(SessionTest, ValidateRejectsBadThreadCounts) {
  WorkflowOptions options;
  options.num_threads = 4096;
  const Status status = options.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("num_threads"), std::string::npos);
}

TEST(SessionTest, ValidateRejectsBadThresholdAndEvidence) {
  {
    WorkflowOptions options;
    options.progressive.matcher.threshold = 1.5;
    const Status status = options.Validate();
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("threshold"), std::string::npos);
  }
  {
    WorkflowOptions options;
    options.progressive.evidence.staleness_tolerance = -0.1;
    const Status status = options.Validate();
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("staleness"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Evidence options sharing (batch vs online defaults)
// ---------------------------------------------------------------------------

TEST(SessionTest, EvidenceDefaultsAreBitIdenticalAcrossDrivers) {
  // The five knobs were deduplicated into EvidenceOptions; both drivers now
  // embed the same struct, so their defaults cannot drift apart.
  const EvidenceOptions defaults;
  EXPECT_EQ(std::bit_cast<uint64_t>(defaults.increment),
            std::bit_cast<uint64_t>(0.5));
  EXPECT_EQ(std::bit_cast<uint64_t>(defaults.weight),
            std::bit_cast<uint64_t>(0.3));
  EXPECT_EQ(std::bit_cast<uint64_t>(defaults.priority),
            std::bit_cast<uint64_t>(0.4));
  EXPECT_EQ(defaults.max_neighbors_per_side, 16u);
  EXPECT_EQ(std::bit_cast<uint64_t>(defaults.staleness_tolerance),
            std::bit_cast<uint64_t>(0.25));
}

}  // namespace
}  // namespace minoan
