// Determinism suite for the external-memory shuffle engine (src/extmem/):
// spill-file and merge primitives, forced-spill byte parity against the
// in-memory paths for blocking postings and meta-blocking vote shards at
// 1/2/4/7 threads, whole-session match-sequence invariance, and temp-file
// cleanup on success AND on exception. Budgets are chosen tiny enough that
// every shard spills several sorted runs — the telemetry asserts it.

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "blocking/blocking_method.h"
#include "blocking/sharded_blocking.h"
#include "core/session.h"
#include "datagen/lod_generator.h"
#include "extmem/memory_budget.h"
#include "extmem/run_merger.h"
#include "extmem/shuffle.h"
#include "extmem/spill_file.h"
#include "gtest/gtest.h"
#include "metablocking/blocking_graph.h"
#include "metablocking/meta_blocking.h"
#include "metablocking/sharded_prune.h"
#include "util/thread_pool.h"

namespace minoan {
namespace {

namespace fs = std::filesystem;

/// A fresh directory under the system temp dir that the test removes; any
/// "minoan-spill-*" subdirectory still present at assertion time is a
/// leaked spill dir.
class TempBase {
 public:
  explicit TempBase(const char* tag) {
    path_ = fs::temp_directory_path() /
            (std::string("minoan-spill-test-") + tag);
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempBase() { fs::remove_all(path_); }

  std::string str() const { return path_.string(); }

  size_t NumEntries() const {
    size_t n = 0;
    for ([[maybe_unused]] const auto& entry : fs::directory_iterator(path_)) {
      ++n;
    }
    return n;
  }

 private:
  fs::path path_;
};

std::string MakeRecord(uint32_t key, uint32_t payload) {
  std::string record;
  extmem::EncodeKey(key, record);
  extmem::AppendU32Le(record, payload);
  return record;
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

TEST(SpillFileTest, RoundTripsBinaryRecords) {
  TempBase base("file");
  const std::string path = base.str() + "/run-0.spill";
  const std::vector<std::string> records = {
      std::string("plain"), std::string("\x00\xff\x00", 3), std::string(),
      std::string(1000, 'x')};
  {
    extmem::SpillFileWriter writer(path);
    for (const std::string& r : records) writer.Append(r);
    EXPECT_GT(writer.Close(), 0u);
    EXPECT_EQ(writer.records(), records.size());
  }
  extmem::SpillFileReader reader(path);
  std::string_view record;
  for (const std::string& expected : records) {
    ASSERT_TRUE(reader.Next(record));
    EXPECT_EQ(record, expected);
  }
  EXPECT_FALSE(reader.Next(record));
}

TEST(SpillFileTest, MissingFileAndTruncationThrow) {
  TempBase base("file-err");
  EXPECT_THROW(extmem::SpillFileReader(base.str() + "/absent.spill"),
               extmem::SpillError);
  const std::string path = base.str() + "/trunc.spill";
  {
    extmem::SpillFileWriter writer(path);
    writer.Append("hello world");
    writer.Close();
  }
  fs::resize_file(path, 7);  // cut the record body short
  extmem::SpillFileReader reader(path);
  std::string_view record;
  EXPECT_THROW(reader.Next(record), extmem::SpillError);
}

TEST(SpillShuffleTest, InMemorySortIsStable) {
  extmem::SpillShuffle sink(/*run_bytes=*/0, nullptr);
  // Equal keys must keep arrival order (payload tracks it).
  sink.Add(MakeRecord(7, 0));
  sink.Add(MakeRecord(3, 1));
  sink.Add(MakeRecord(7, 2));
  sink.Add(MakeRecord(3, 3));
  sink.Add(MakeRecord(1, 4));
  auto source = sink.Finish();
  std::vector<std::pair<uint32_t, uint32_t>> seen;
  std::string_view record;
  while (source->Next(record)) {
    seen.emplace_back(
        extmem::DecodeKey<uint32_t>(extmem::RecordKey(record)),
        extmem::ReadU32Le(extmem::RecordPayload(record)));
  }
  const std::vector<std::pair<uint32_t, uint32_t>> expected = {
      {1, 4}, {3, 1}, {3, 3}, {7, 0}, {7, 2}};
  EXPECT_EQ(seen, expected);
}

TEST(SpillShuffleTest, SpilledMergeEqualsInMemorySort) {
  // Deterministic pseudo-random arrival with many duplicate keys, tiny run
  // budget → many runs, each splitting equal-key groups.
  const auto arrival = [](size_t i) {
    return static_cast<uint32_t>((i * 2654435761u) % 97);
  };
  constexpr size_t kRecords = 3000;

  extmem::SpillShuffle reference(/*run_bytes=*/0, nullptr);
  for (size_t i = 0; i < kRecords; ++i) {
    reference.Add(MakeRecord(arrival(i), static_cast<uint32_t>(i)));
  }
  auto ref_source = reference.Finish();

  TempBase base("merge");
  extmem::ScopedSpillDir dir(base.str());
  extmem::SpillShuffle spilled(/*run_bytes=*/256, &dir);
  for (size_t i = 0; i < kRecords; ++i) {
    spilled.Add(MakeRecord(arrival(i), static_cast<uint32_t>(i)));
  }
  EXPECT_GE(spilled.runs_spilled(), 3u);
  auto spill_source = spilled.Finish();

  std::string_view ref_record, spill_record;
  size_t count = 0;
  while (ref_source->Next(ref_record)) {
    ASSERT_TRUE(spill_source->Next(spill_record)) << "at record " << count;
    ASSERT_EQ(ref_record, spill_record) << "at record " << count;
    ++count;
  }
  EXPECT_FALSE(spill_source->Next(spill_record));
  EXPECT_EQ(count, kRecords);
}

TEST(SpillShuffleTest, RunSpilledShuffleCleansUpOnSuccessAndException) {
  TempBase base("cleanup");
  extmem::MemoryBudgetOptions memory;
  memory.spill_run_bytes = 256;
  memory.spill_dir = base.str();

  const auto scan = [](size_t, size_t begin, size_t end, const auto& route) {
    std::string record;
    for (size_t i = begin; i < end; ++i) {
      record.clear();
      extmem::EncodeKey(static_cast<uint32_t>(i % 31), record);
      extmem::AppendU32Le(record, static_cast<uint32_t>(i));
      route(static_cast<uint32_t>(i % 4), record);
    }
  };
  uint64_t consumed = 0;
  extmem::RunSpilledShuffle(
      nullptr, /*total=*/5000, /*chunk_size=*/256, /*num_shards=*/4, memory,
      scan, [&](uint32_t, extmem::ShuffleSource& source) {
        std::string_view record;
        while (source.Next(record)) ++consumed;
      });
  EXPECT_EQ(consumed, 5000u);
  EXPECT_EQ(base.NumEntries(), 0u) << "spill dir leaked after success";

  // An exception from the consume stage must unwind through the engine
  // with every temp file removed.
  EXPECT_THROW(
      extmem::RunSpilledShuffle(
          nullptr, 5000, 256, 4, memory, scan,
          [&](uint32_t, extmem::ShuffleSource&) {
            throw std::runtime_error("consumer failure");
          }),
      std::runtime_error);
  EXPECT_EQ(base.NumEntries(), 0u) << "spill dir leaked after exception";
}

TEST(SpillShuffleTest, UnwritableSpillDirThrowsSpillError) {
  extmem::MemoryBudgetOptions memory;
  memory.spill_run_bytes = 256;
  memory.spill_dir = "/proc/definitely-not-writable";
  EXPECT_THROW(
      extmem::RunSpilledShuffle(
          nullptr, 10, 4, 2, memory,
          [](size_t, size_t, size_t, const auto&) {},
          [](uint32_t, extmem::ShuffleSource&) {}),
      extmem::SpillError);
}

// ---------------------------------------------------------------------------
// Engine parity on a generated LOD corpus
// ---------------------------------------------------------------------------

::testing::AssertionResult SameBlocks(const BlockCollection& a,
                                      const BlockCollection& b) {
  if (a.num_blocks() != b.num_blocks()) {
    return ::testing::AssertionFailure()
           << "block count mismatch: " << a.num_blocks() << " vs "
           << b.num_blocks();
  }
  for (size_t i = 0; i < a.num_blocks(); ++i) {
    if (a.KeyString(a.block(i).key) != b.KeyString(b.block(i).key)) {
      return ::testing::AssertionFailure()
             << "block " << i << " key mismatch: \""
             << a.KeyString(a.block(i).key) << "\" vs \""
             << b.KeyString(b.block(i).key) << "\"";
    }
    if (a.block(i).entities != b.block(i).entities) {
      return ::testing::AssertionFailure()
             << "block " << i << " (\"" << a.KeyString(a.block(i).key)
             << "\") entity list mismatch";
    }
  }
  return ::testing::AssertionSuccess();
}

class SpillParityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::LodCloudConfig cfg;
    cfg.seed = 20260715;
    cfg.num_real_entities = 700;
    cfg.num_kbs = 5;
    cfg.center_kbs = 2;
    auto cloud = datagen::GenerateLodCloud(cfg);
    ASSERT_TRUE(cloud.ok());
    auto collection = cloud->BuildCollection();
    ASSERT_TRUE(collection.ok());
    collection_ = new EntityCollection(std::move(collection).value());
    ASSERT_GT(collection_->num_entities(), 3 * kBlockingChunkEntities);
  }
  static void TearDownTestSuite() {
    delete collection_;
    collection_ = nullptr;
  }

  /// A budget small enough to force multi-run spilling on this corpus:
  /// 16 KiB across 64 shards = the 256-byte per-shard floor.
  static extmem::MemoryBudgetOptions TinyBudget(const TempBase& base) {
    extmem::MemoryBudgetOptions memory;
    memory.shuffle_budget_bytes = 16 << 10;
    memory.spill_dir = base.str();
    return memory;
  }

  static EntityCollection* collection_;
};

EntityCollection* SpillParityTest::collection_ = nullptr;

TEST_F(SpillParityTest, BlockingPostingsAreByteIdenticalUnderSpilling) {
  TempBase base("blocking");
  std::vector<std::unique_ptr<BlockingMethod>> methods;
  methods.push_back(std::make_unique<TokenBlocking>());
  methods.push_back(std::make_unique<PisBlocking>());
  methods.push_back(std::make_unique<AttributeClusteringBlocking>());
  {
    std::vector<std::unique_ptr<BlockingMethod>> parts;
    parts.push_back(std::make_unique<TokenBlocking>());
    parts.push_back(std::make_unique<PisBlocking>());
    methods.push_back(std::make_unique<CompositeBlocking>(std::move(parts)));
  }
  for (const auto& method : methods) {
    const BlockCollection in_memory = method->Build(*collection_);
    ASSERT_GT(in_memory.num_blocks(), 0u) << method->name();
    method->set_memory_budget(TinyBudget(base));
    const BlockCollection spilled_seq = method->Build(*collection_);
    EXPECT_TRUE(SameBlocks(in_memory, spilled_seq))
        << method->name() << " spilled, sequential";
    for (uint32_t threads : {2u, 4u, 7u}) {
      ThreadPool pool(threads);
      const BlockCollection spilled = method->Build(*collection_, &pool);
      EXPECT_TRUE(SameBlocks(in_memory, spilled))
          << method->name() << " spilled at " << threads << " threads";
    }
    method->set_memory_budget({});
    EXPECT_EQ(base.NumEntries(), 0u)
        << method->name() << " leaked spill files";
  }
}

TEST_F(SpillParityTest, EveryShardSpillsSeveralRunsUnderTheTinyBudget) {
  TempBase base("telemetry");
  TokenBlocking token;
  token.set_memory_budget(TinyBudget(base));
  extmem::ResetSpillTelemetry();
  const BlockCollection blocks = token.Build(*collection_);
  ASSERT_GT(blocks.num_blocks(), 0u);
  const extmem::SpillTelemetry t = extmem::GetSpillTelemetry();
  EXPECT_EQ(t.sinks_loaded, kBlockingMergeShards);
  EXPECT_EQ(t.sinks_spilled, kBlockingMergeShards);
  // The acceptance bar: >= 3 sorted runs spilled by EVERY shard.
  EXPECT_GE(t.min_runs_per_loaded_sink, 3u);
  EXPECT_GE(t.runs_spilled, 3u * kBlockingMergeShards);
  EXPECT_GT(t.bytes_spilled, 0u);
}

TEST_F(SpillParityTest, VoteShardPruningIsByteIdenticalUnderSpilling) {
  TempBase base("prune");
  BlockCollection blocks = TokenBlocking().Build(*collection_);
  blocks.BuildEntityIndex(collection_->num_entities());
  for (const PruningScheme pruning :
       {PruningScheme::kWnp, PruningScheme::kCnp, PruningScheme::kWep,
        PruningScheme::kCep}) {
    for (const bool reciprocal : {false, true}) {
      if (reciprocal && (pruning == PruningScheme::kWep ||
                         pruning == PruningScheme::kCep)) {
        continue;  // reciprocity is a node-centric notion
      }
      MetaBlockingOptions opts;
      opts.weighting = WeightingScheme::kEcbs;
      opts.pruning = pruning;
      opts.reciprocal = reciprocal;
      const BlockingGraphView view(blocks, *collection_, opts.weighting,
                                   opts.mode);
      MetaBlockingStats in_memory_stats;
      const auto in_memory =
          ShardedPrune(view, opts, nullptr, &in_memory_stats);
      ASSERT_GT(in_memory.size(), 0u);

      opts.memory = TinyBudget(base);
      extmem::ResetSpillTelemetry();
      MetaBlockingStats seq_stats;
      const auto spilled_seq = ShardedPrune(view, opts, nullptr, &seq_stats);
      EXPECT_GT(extmem::GetSpillTelemetry().runs_spilled, 0u);
      ASSERT_EQ(in_memory.size(), spilled_seq.size());
      EXPECT_EQ(std::memcmp(in_memory.data(), spilled_seq.data(),
                            in_memory.size() * sizeof(WeightedComparison)),
                0)
          << PruningSchemeName(pruning) << (reciprocal ? "+recip" : "");
      EXPECT_EQ(in_memory_stats.nominations, seq_stats.nominations);
      EXPECT_EQ(in_memory_stats.distinct_pairs, seq_stats.distinct_pairs);
      EXPECT_EQ(in_memory_stats.graph_edges, seq_stats.graph_edges);

      for (uint32_t threads : {2u, 7u}) {
        ThreadPool pool(threads);
        const auto spilled = ShardedPrune(view, opts, &pool);
        ASSERT_EQ(in_memory.size(), spilled.size());
        EXPECT_EQ(std::memcmp(in_memory.data(), spilled.data(),
                              in_memory.size() * sizeof(WeightedComparison)),
                  0)
            << PruningSchemeName(pruning) << (reciprocal ? "+recip" : "")
            << " at " << threads << " threads";
      }
      EXPECT_EQ(base.NumEntries(), 0u) << "pruning leaked spill files";
    }
  }
}

TEST_F(SpillParityTest, SessionMatchSequenceIsInvariantUnderSpilling) {
  TempBase base("session");
  const auto run = [&](bool spill, uint32_t threads) {
    WorkflowOptions options;
    options.num_threads = threads;
    options.progressive.matcher.threshold = 0.3;
    if (spill) options.memory = TinyBudget(base);
    auto session = ResolutionSession::Open(*collection_, options);
    EXPECT_TRUE(session.ok());
    session->Step(0);
    return session->Report();
  };
  const ResolutionReport reference = run(false, 1);
  ASSERT_GT(reference.progressive.run.matches.size(), 0u);
  for (uint32_t threads : {1u, 2u, 4u, 7u}) {
    const ResolutionReport report = run(true, threads);
    EXPECT_EQ(reference.blocks_built, report.blocks_built);
    EXPECT_EQ(reference.blocks_after_cleaning, report.blocks_after_cleaning);
    EXPECT_EQ(reference.comparisons_before_meta,
              report.comparisons_before_meta);
    EXPECT_EQ(reference.comparisons_after_meta,
              report.comparisons_after_meta);
    EXPECT_EQ(reference.meta_stats.retained_edges,
              report.meta_stats.retained_edges);
    EXPECT_EQ(std::memcmp(&reference.meta_stats.mean_weight,
                          &report.meta_stats.mean_weight, sizeof(double)),
              0);
    EXPECT_EQ(reference.progressive.run.comparisons_executed,
              report.progressive.run.comparisons_executed);
    const auto& ref_matches = reference.progressive.run.matches;
    const auto& got_matches = report.progressive.run.matches;
    ASSERT_EQ(ref_matches.size(), got_matches.size())
        << "spilled at " << threads << " threads";
    for (size_t i = 0; i < ref_matches.size(); ++i) {
      EXPECT_EQ(ref_matches[i].a, got_matches[i].a);
      EXPECT_EQ(ref_matches[i].b, got_matches[i].b);
      EXPECT_EQ(ref_matches[i].comparisons_done,
                got_matches[i].comparisons_done);
      EXPECT_EQ(std::memcmp(&ref_matches[i].similarity,
                            &got_matches[i].similarity, sizeof(double)),
                0)
          << "match " << i << " similarity bits differ at " << threads
          << " threads";
    }
  }
  EXPECT_EQ(base.NumEntries(), 0u) << "session leaked spill files";
}

TEST_F(SpillParityTest, SessionSurfacesUnwritableSpillDirAsStatus) {
  WorkflowOptions options;
  options.memory.shuffle_budget_bytes = 16 << 10;
  options.memory.spill_dir = "/proc/definitely-not-writable";
  auto session = ResolutionSession::Open(*collection_, options);
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace minoan
