// Unit tests for the text module: normalization, tokenization, similarity
// kernels (exact known values plus parameterized metric properties).

#include <cmath>

#include "gtest/gtest.h"
#include "text/normalize.h"
#include "text/similarity.h"
#include "text/tokenizer.h"
#include "util/interner.h"

namespace minoan {
namespace {

// ---------------------------------------------------------------------------
// NormalizeText
// ---------------------------------------------------------------------------

TEST(NormalizeTest, LowercasesAscii) {
  EXPECT_EQ(NormalizeText("HeRaKlIoN"), "heraklion");
}

TEST(NormalizeTest, PunctuationBecomesSingleSpace) {
  EXPECT_EQ(NormalizeText("crete,  greece!!"), "crete greece");
}

TEST(NormalizeTest, LeadingTrailingJunkDropped) {
  EXPECT_EQ(NormalizeText("  --hello-- "), "hello");
}

TEST(NormalizeTest, EmptyAndAllJunk) {
  EXPECT_EQ(NormalizeText(""), "");
  EXPECT_EQ(NormalizeText("!!! ???"), "");
}

TEST(NormalizeTest, DigitsKept) {
  EXPECT_EQ(NormalizeText("Route 66"), "route 66");
}

TEST(NormalizeTest, Utf8BytesPreserved) {
  // Multi-byte characters pass through untouched.
  EXPECT_EQ(NormalizeText("Ηράκλειο"), "Ηράκλειο");
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

std::vector<std::string> Toks(std::string_view text,
                              TokenizerOptions opts = {}) {
  Tokenizer tokenizer(opts);
  std::vector<std::string> out;
  tokenizer.Tokenize(text, out);
  return out;
}

TEST(TokenizerTest, SplitsOnNonAlnum) {
  EXPECT_EQ(Toks("the-Minoan palace, Knossos"),
            (std::vector<std::string>{"the", "minoan", "palace", "knossos"}));
}

TEST(TokenizerTest, MinLengthFilters) {
  TokenizerOptions opts;
  opts.min_token_length = 3;
  EXPECT_EQ(Toks("a bb ccc dddd", opts),
            (std::vector<std::string>{"ccc", "dddd"}));
}

TEST(TokenizerTest, NumericTokensToggle) {
  TokenizerOptions keep;
  EXPECT_EQ(Toks("born 1984", keep),
            (std::vector<std::string>{"born", "1984"}));
  TokenizerOptions drop;
  drop.keep_numeric = false;
  EXPECT_EQ(Toks("born 1984", drop), (std::vector<std::string>{"born"}));
}

TEST(TokenizerTest, DuplicatesPreserved) {
  EXPECT_EQ(Toks("ab ab ab"), (std::vector<std::string>{"ab", "ab", "ab"}));
}

TEST(TokenizerTest, TokenizeIntoInternsIds) {
  Tokenizer tokenizer;
  StringInterner dict;
  std::vector<uint32_t> ids;
  tokenizer.TokenizeInto("alpha beta alpha", dict, ids);
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], ids[2]);
  EXPECT_NE(ids[0], ids[1]);
  EXPECT_EQ(dict.View(ids[1]), "beta");
}

TEST(TokenizerTest, SortUniqueDedupes) {
  std::vector<uint32_t> ids{5, 3, 5, 1, 3};
  SortUnique(ids);
  EXPECT_EQ(ids, (std::vector<uint32_t>{1, 3, 5}));
}

TEST(TokenizerTest, NoNormalizeKeepsCase) {
  TokenizerOptions opts;
  opts.normalize = false;
  EXPECT_EQ(Toks("MixedCase", opts), (std::vector<std::string>{"MixedCase"}));
}

// ---------------------------------------------------------------------------
// Set-kernel exact values
// ---------------------------------------------------------------------------

TEST(SetSimilarityTest, IntersectionSizeBasics) {
  EXPECT_EQ(IntersectionSize({1, 2, 3}, {2, 3, 4}), 2u);
  EXPECT_EQ(IntersectionSize({}, {1}), 0u);
  EXPECT_EQ(IntersectionSize({1, 2}, {3, 4}), 0u);
  EXPECT_EQ(IntersectionSize({1, 2, 3}, {1, 2, 3}), 3u);
}

TEST(SetSimilarityTest, JaccardKnownValues) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1, 2, 3}, {2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1}, {1}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1}, {2}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 0.0);
}

TEST(SetSimilarityTest, DiceKnownValues) {
  EXPECT_DOUBLE_EQ(DiceSimilarity({1, 2, 3}, {2, 3, 4}), 2.0 * 2 / 6);
  EXPECT_DOUBLE_EQ(DiceSimilarity({1}, {1}), 1.0);
}

TEST(SetSimilarityTest, OverlapCoefficientKnownValues) {
  EXPECT_DOUBLE_EQ(OverlapCoefficient({1, 2}, {1, 2, 3, 4}), 1.0);
  EXPECT_DOUBLE_EQ(OverlapCoefficient({1, 5}, {1, 2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(OverlapCoefficient({}, {1}), 0.0);
}

TEST(SetSimilarityTest, BinaryCosineKnownValues) {
  EXPECT_DOUBLE_EQ(BinaryCosineSimilarity({1, 2}, {1, 2}), 1.0);
  EXPECT_NEAR(BinaryCosineSimilarity({1, 2, 3}, {2, 3, 4}),
              2.0 / 3.0, 1e-12);
}

TEST(WeightedSimilarityTest, CosineKnownValues) {
  std::vector<WeightedToken> a{{1, 1.0}, {2, 2.0}};
  std::vector<WeightedToken> b{{1, 1.0}, {2, 2.0}};
  EXPECT_NEAR(WeightedCosineSimilarity(a, b), 1.0, 1e-12);
  std::vector<WeightedToken> c{{3, 5.0}};
  EXPECT_DOUBLE_EQ(WeightedCosineSimilarity(a, c), 0.0);
}

TEST(WeightedSimilarityTest, WeightedJaccardKnownValues) {
  std::vector<WeightedToken> a{{1, 2.0}, {2, 1.0}};
  std::vector<WeightedToken> b{{1, 1.0}, {3, 1.0}};
  // min-sum = 1 (token 1); max-sum = 2 + 1 + 1 = 4.
  EXPECT_DOUBLE_EQ(WeightedJaccardSimilarity(a, b), 0.25);
  EXPECT_DOUBLE_EQ(WeightedJaccardSimilarity(a, a), 1.0);
  EXPECT_DOUBLE_EQ(WeightedJaccardSimilarity({}, {}), 0.0);
}

// ---------------------------------------------------------------------------
// Character kernels
// ---------------------------------------------------------------------------

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
}

TEST(LevenshteinTest, SimilarityNormalization) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_NEAR(LevenshteinSimilarity("kitten", "sitting"), 1.0 - 3.0 / 7.0,
              1e-12);
}

TEST(JaroTest, KnownValues) {
  EXPECT_NEAR(JaroSimilarity("MARTHA", "MARHTA"), 0.944444, 1e-5);
  EXPECT_NEAR(JaroSimilarity("DIXON", "DICKSONX"), 0.766667, 1e-5);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("a", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
}

TEST(JaroWinklerTest, BoostsCommonPrefix) {
  EXPECT_NEAR(JaroWinklerSimilarity("MARTHA", "MARHTA"), 0.961111, 1e-5);
  const double jw = JaroWinklerSimilarity("prefixed", "prefixes");
  const double j = JaroSimilarity("prefixed", "prefixes");
  EXPECT_GT(jw, j);
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("same", "same"), 1.0);
}

TEST(QGramTest, KnownValues) {
  EXPECT_DOUBLE_EQ(QGramSimilarity("abcd", "abcd", 2), 1.0);
  EXPECT_DOUBLE_EQ(QGramSimilarity("ab", "cd", 2), 0.0);
  // "abc" vs "abd": bigrams {ab,bc} vs {ab,bd} -> 1/3.
  EXPECT_NEAR(QGramSimilarity("abc", "abd", 2), 1.0 / 3.0, 1e-12);
}

TEST(QGramTest, ShortStringsFallBackToEquality) {
  EXPECT_DOUBLE_EQ(QGramSimilarity("ab", "ab", 3), 1.0);
  EXPECT_DOUBLE_EQ(QGramSimilarity("ab", "ac", 3), 0.0);
}

// ---------------------------------------------------------------------------
// Parameterized metric properties: each kernel obeys range, symmetry, and
// identity axioms on a grid of inputs.
// ---------------------------------------------------------------------------

using SetKernel = double (*)(const std::vector<uint32_t>&,
                             const std::vector<uint32_t>&);

class SetKernelProperties
    : public ::testing::TestWithParam<std::pair<const char*, SetKernel>> {};

TEST_P(SetKernelProperties, RangeSymmetryIdentity) {
  const SetKernel kernel = GetParam().second;
  const std::vector<std::vector<uint32_t>> sets = {
      {},           {1},         {1, 2},     {1, 2, 3},
      {4, 5, 6},    {1, 3, 5},   {2, 4, 6},  {1, 2, 3, 4, 5, 6},
      {10, 20, 30}, {1, 10, 20}, {7},        {7, 8},
  };
  for (const auto& a : sets) {
    for (const auto& b : sets) {
      const double ab = kernel(a, b);
      const double ba = kernel(b, a);
      EXPECT_DOUBLE_EQ(ab, ba) << "symmetry violated";
      EXPECT_GE(ab, 0.0);
      EXPECT_LE(ab, 1.0);
    }
    if (!a.empty()) {
      EXPECT_DOUBLE_EQ(kernel(a, a), 1.0) << "identity violated";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSetKernels, SetKernelProperties,
    ::testing::Values(
        std::make_pair("jaccard", &JaccardSimilarity),
        std::make_pair("dice", &DiceSimilarity),
        std::make_pair("overlap", &OverlapCoefficient),
        std::make_pair("cosine", &BinaryCosineSimilarity)),
    [](const auto& info) { return std::string(info.param.first); });

using StringKernel = double (*)(std::string_view, std::string_view);

class StringKernelProperties
    : public ::testing::TestWithParam<std::pair<const char*, StringKernel>> {};

TEST_P(StringKernelProperties, RangeSymmetryIdentity) {
  const StringKernel kernel = GetParam().second;
  const std::vector<std::string> strings = {
      "", "a", "ab", "abc", "abcd", "minoan", "minos", "knossos",
      "palace", "palaces", "xyz", "zyx",
  };
  for (const auto& a : strings) {
    for (const auto& b : strings) {
      const double ab = kernel(a, b);
      EXPECT_DOUBLE_EQ(ab, kernel(b, a)) << a << " vs " << b;
      EXPECT_GE(ab, 0.0);
      EXPECT_LE(ab, 1.0 + 1e-12);
    }
    EXPECT_DOUBLE_EQ(kernel(a, a), 1.0) << a;
  }
}

double QGram3(std::string_view a, std::string_view b) {
  return QGramSimilarity(a, b, 3);
}

INSTANTIATE_TEST_SUITE_P(
    AllStringKernels, StringKernelProperties,
    ::testing::Values(
        std::make_pair("levenshtein", &LevenshteinSimilarity),
        std::make_pair("jaro", &JaroSimilarity),
        std::make_pair("jaro_winkler", &JaroWinklerSimilarity),
        std::make_pair("qgram3", &QGram3)),
    [](const auto& info) { return std::string(info.param.first); });

}  // namespace
}  // namespace minoan
