// Unit tests for the Turtle parser: directives, prefixed names, predicate
// and object lists, blank node property lists, literal shorthands, error
// paths, and equivalence with N-Triples for shared documents.

#include <fstream>

#include "gtest/gtest.h"
#include "rdf/ntriples.h"
#include "rdf/turtle.h"

namespace minoan {
namespace rdf {
namespace {

std::vector<Triple> Parse(const std::string& doc) {
  TurtleParser parser;
  auto result = parser.ParseString(doc);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.ok() ? std::move(result).value() : std::vector<Triple>{};
}

Status ParseErr(const std::string& doc) {
  TurtleParser parser;
  auto result = parser.ParseString(doc);
  return result.ok() ? Status::Ok() : result.status();
}

TEST(TurtleTest, PlainTriple) {
  const auto triples = Parse("<http://x/s> <http://x/p> <http://x/o> .");
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_EQ(triples[0].subject.lexical, "http://x/s");
  EXPECT_EQ(triples[0].object.lexical, "http://x/o");
}

TEST(TurtleTest, PrefixDirective) {
  const auto triples = Parse(R"(
@prefix ex: <http://example.org/> .
ex:crete ex:capital ex:heraklion .
)");
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_EQ(triples[0].subject.lexical, "http://example.org/crete");
  EXPECT_EQ(triples[0].predicate.lexical, "http://example.org/capital");
}

TEST(TurtleTest, SparqlStyleDirectives) {
  const auto triples = Parse(R"(
PREFIX ex: <http://example.org/>
ex:a ex:b ex:c .
)");
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_EQ(triples[0].subject.lexical, "http://example.org/a");
}

TEST(TurtleTest, EmptyPrefix) {
  const auto triples = Parse(R"(
@prefix : <http://default.org/> .
:a :b :c .
)");
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_EQ(triples[0].subject.lexical, "http://default.org/a");
}

TEST(TurtleTest, BaseResolution) {
  const auto triples = Parse(R"(
@base <http://base.org/data/> .
<rel> <#frag> </abs> .
)");
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_EQ(triples[0].subject.lexical, "http://base.org/data/rel");
  EXPECT_EQ(triples[0].predicate.lexical, "http://base.org/data/#frag");
  EXPECT_EQ(triples[0].object.lexical, "http://base.org/abs");
}

TEST(TurtleTest, AKeywordIsRdfType) {
  const auto triples = Parse(R"(
@prefix ex: <http://example.org/> .
ex:knossos a ex:Palace .
)");
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_EQ(triples[0].predicate.lexical, std::string(kRdfType));
}

TEST(TurtleTest, PredicateList) {
  const auto triples = Parse(R"(
@prefix ex: <http://example.org/> .
ex:s ex:p1 "a" ; ex:p2 "b" ; ex:p3 "c" .
)");
  ASSERT_EQ(triples.size(), 3u);
  EXPECT_EQ(triples[0].predicate.lexical, "http://example.org/p1");
  EXPECT_EQ(triples[2].object.lexical, "c");
  for (const Triple& t : triples) {
    EXPECT_EQ(t.subject.lexical, "http://example.org/s");
  }
}

TEST(TurtleTest, TrailingSemicolonAllowed) {
  const auto triples = Parse(R"(
@prefix ex: <http://example.org/> .
ex:s ex:p "a" ; .
)");
  EXPECT_EQ(triples.size(), 1u);
}

TEST(TurtleTest, ObjectList) {
  const auto triples = Parse(R"(
@prefix ex: <http://example.org/> .
ex:s ex:p "a", "b", "c" .
)");
  ASSERT_EQ(triples.size(), 3u);
  EXPECT_EQ(triples[1].object.lexical, "b");
}

TEST(TurtleTest, LiteralForms) {
  const auto triples = Parse(R"(
@prefix ex: <http://example.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:s ex:str "plain" ;
     ex:lang "bonjour"@fr ;
     ex:typed "5"^^xsd:byte ;
     ex:single 'apostrophes' .
)");
  ASSERT_EQ(triples.size(), 4u);
  EXPECT_EQ(triples[1].object.language, "fr");
  EXPECT_EQ(triples[2].object.datatype,
            "http://www.w3.org/2001/XMLSchema#byte");
  EXPECT_EQ(triples[3].object.lexical, "apostrophes");
}

TEST(TurtleTest, NumericAndBooleanShorthands) {
  const auto triples = Parse(R"(
@prefix ex: <http://example.org/> .
ex:s ex:int 42 ; ex:neg -7 ; ex:dec 3.14 ; ex:exp 1.2e3 ; ex:flag true .
)");
  ASSERT_EQ(triples.size(), 5u);
  EXPECT_EQ(triples[0].object.lexical, "42");
  EXPECT_EQ(triples[0].object.datatype, std::string(kXsdInteger));
  EXPECT_EQ(triples[1].object.lexical, "-7");
  EXPECT_EQ(triples[2].object.datatype,
            "http://www.w3.org/2001/XMLSchema#decimal");
  EXPECT_EQ(triples[3].object.datatype,
            "http://www.w3.org/2001/XMLSchema#double");
  EXPECT_EQ(triples[4].object.lexical, "true");
}

TEST(TurtleTest, BlankNodeLabels) {
  const auto triples = Parse(R"(
@prefix ex: <http://example.org/> .
_:b1 ex:knows _:b2 .
)");
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_TRUE(triples[0].subject.is_blank());
  EXPECT_EQ(triples[0].subject.lexical, "b1");
  EXPECT_EQ(triples[0].object.lexical, "b2");
}

TEST(TurtleTest, AnonymousBlankNodeObject) {
  const auto triples = Parse(R"(
@prefix ex: <http://example.org/> .
ex:s ex:address [ ex:city "heraklion" ; ex:zip "71201" ] .
)");
  // 1 outer triple + 2 inner ones on the anonymous node.
  ASSERT_EQ(triples.size(), 3u);
  // Inner triples come first (emitted while parsing the property list).
  EXPECT_TRUE(triples[0].subject.is_blank());
  EXPECT_EQ(triples[2].predicate.lexical, "http://example.org/address");
  EXPECT_EQ(triples[2].object.lexical, triples[0].subject.lexical);
}

TEST(TurtleTest, BlankNodeSubjectPropertyList) {
  const auto triples = Parse(R"(
@prefix ex: <http://example.org/> .
[ ex:p "v" ] .
)");
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_TRUE(triples[0].subject.is_blank());
}

TEST(TurtleTest, CommentsIgnored) {
  const auto triples = Parse(R"(
# leading comment
@prefix ex: <http://example.org/> . # trailing
ex:s ex:p "v" . # done
)");
  EXPECT_EQ(triples.size(), 1u);
}

TEST(TurtleTest, DotInsidePrefixedLocalName) {
  const auto triples = Parse(R"(
@prefix ex: <http://example.org/> .
ex:version1.2 ex:p "v" .
)");
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_EQ(triples[0].subject.lexical, "http://example.org/version1.2");
}

TEST(TurtleTest, EscapedLocalName) {
  const auto triples = Parse(R"(
@prefix ex: <http://example.org/> .
ex:a\~b ex:p "v" .
)");
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_EQ(triples[0].subject.lexical, "http://example.org/a~b");
}

// --- error paths -----------------------------------------------------------

TEST(TurtleErrorTest, UndefinedPrefix) {
  const Status st = ParseErr("nope:a nope:b nope:c .");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("undefined prefix"), std::string::npos);
}

TEST(TurtleErrorTest, MissingDot) {
  EXPECT_FALSE(ParseErr("<http://x/s> <http://x/p> <http://x/o>").ok());
}

TEST(TurtleErrorTest, CollectionsRejectedWithClearMessage) {
  const Status st = ParseErr(R"(
@prefix ex: <http://example.org/> .
ex:s ex:p ( "a" "b" ) .
)");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("collections"), std::string::npos);
}

TEST(TurtleErrorTest, TripleQuotesRejected) {
  const Status st = ParseErr(R"(
@prefix ex: <http://example.org/> .
ex:s ex:p """long""" .
)");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("triple-quoted"), std::string::npos);
}

TEST(TurtleErrorTest, ErrorsCarryLineNumbers) {
  const Status st = ParseErr("\n\n<http://x/s> <http://x/p> .\n");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("line 3"), std::string::npos);
}

// --- interop ---------------------------------------------------------------

TEST(TurtleInteropTest, MatchesNTriplesOnSharedSubset) {
  const std::string nt_doc =
      "<http://x/s> <http://x/p> \"value\"@en .\n"
      "<http://x/s> <http://x/q> <http://x/o> .\n";
  NTriplesParser nt;
  auto from_nt = nt.ParseString(nt_doc);
  TurtleParser ttl;
  auto from_ttl = ttl.ParseString(nt_doc);  // N-Triples is valid Turtle
  ASSERT_TRUE(from_nt.ok());
  ASSERT_TRUE(from_ttl.ok());
  ASSERT_EQ(from_nt->size(), from_ttl->size());
  for (size_t i = 0; i < from_nt->size(); ++i) {
    EXPECT_EQ((*from_nt)[i], (*from_ttl)[i]);
  }
}

TEST(TurtleInteropTest, LoadTriplesDispatchesByExtension) {
  const std::string dir = ::testing::TempDir();
  {
    std::ofstream out(dir + "/sample.ttl");
    out << "@prefix ex: <http://example.org/> .\nex:a ex:b ex:c .\n";
  }
  {
    std::ofstream out(dir + "/sample.nt");
    out << "<http://x/s> <http://x/p> \"v\" .\n";
  }
  auto ttl = LoadTriples(dir + "/sample.ttl");
  ASSERT_TRUE(ttl.ok());
  EXPECT_EQ(ttl->size(), 1u);
  auto nt = LoadTriples(dir + "/sample.nt");
  ASSERT_TRUE(nt.ok());
  EXPECT_EQ(nt->size(), 1u);
  EXPECT_FALSE(LoadTriples(dir + "/sample.xyz").ok());
}

}  // namespace
}  // namespace rdf
}  // namespace minoan
