// Unit tests for the util module: Status/Result, RNG, interner, hashing,
// TopK, tables, and the thread pool.

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "util/hash.h"
#include "util/interner.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/topk.h"

namespace minoan {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad knob");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad knob");
  EXPECT_EQ(s.ToString(), "invalid_argument: bad knob");
}

TEST(StatusTest, AllFactoriesProduceTheirCode) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(41);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 41);
  EXPECT_EQ(r.value_or(0), 41);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-7), -7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string taken = std::move(r).value();
  EXPECT_EQ(taken, "payload");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Result<int> DoubleIfPositive(int x) {
  MINOAN_RETURN_IF_ERROR(FailIfNegative(x));
  return x * 2;
}

Result<int> ChainedViaMacro(int x) {
  MINOAN_ASSIGN_OR_RETURN(int doubled, DoubleIfPositive(x));
  return doubled + 1;
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(DoubleIfPositive(3).ok());
  EXPECT_EQ(*DoubleIfPositive(3), 6);
  EXPECT_FALSE(DoubleIfPositive(-1).ok());
}

TEST(ResultTest, AssignOrReturnPropagates) {
  ASSERT_TRUE(ChainedViaMacro(5).ok());
  EXPECT_EQ(*ChainedViaMacro(5), 11);
  EXPECT_EQ(ChainedViaMacro(-5).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 4);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, BelowCoversAllResidues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.Below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformInclusiveBounds) {
  Rng rng(9);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.Uniform(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= (v == -3);
    hit_hi |= (v == 3);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(23);
  Rng c1 = parent.Fork(1);
  Rng c2 = parent.Fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (c1() == c2());
  EXPECT_LT(same, 4);
}

TEST(RngTest, GeometricCountRespectsCap) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(rng.GeometricCount(0.99, 5), 5u);
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.GeometricCount(0.0, 5), 0u);
  }
}

TEST(ZipfSamplerTest, RankZeroMostPopular) {
  ZipfSampler zipf(100, 1.2);
  EXPECT_GT(zipf.Pmf(0), zipf.Pmf(1));
  EXPECT_GT(zipf.Pmf(1), zipf.Pmf(50));
}

TEST(ZipfSamplerTest, PmfSumsToOne) {
  ZipfSampler zipf(64, 0.9);
  double total = 0;
  for (uint32_t k = 0; k < zipf.size(); ++k) total += zipf.Pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, SamplesWithinRangeAndSkewed) {
  ZipfSampler zipf(50, 1.5);
  Rng rng(31);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 20000; ++i) {
    const uint32_t k = zipf.Sample(rng);
    ASSERT_LT(k, 50u);
    ++counts[k];
  }
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 20000 / 10);  // rank 0 holds a large share
}

TEST(ZipfSamplerTest, ZeroSkewIsUniformish) {
  ZipfSampler zipf(10, 0.0);
  for (uint32_t k = 0; k + 1 < zipf.size(); ++k) {
    EXPECT_NEAR(zipf.Pmf(k), 0.1, 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------------

TEST(HashTest, Fnv1aMatchesKnownVector) {
  // FNV-1a 64 of empty string is the offset basis.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  // "a" — standard published value.
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(HashTest, PairKeyOrdersEndpoints) {
  EXPECT_EQ(PairKey(3, 9), PairKey(9, 3));
  EXPECT_EQ(PairKeyFirst(PairKey(9, 3)), 3u);
  EXPECT_EQ(PairKeySecond(PairKey(9, 3)), 9u);
}

TEST(HashTest, PairHashSymmetric) {
  EXPECT_EQ(PairHash(1, 2), PairHash(2, 1));
  EXPECT_NE(PairHash(1, 2), PairHash(1, 3));
}

TEST(HashTest, Mix64ChangesValue) {
  EXPECT_NE(Mix64(1), 1u);
  EXPECT_NE(Mix64(1), Mix64(2));
}

// ---------------------------------------------------------------------------
// StringInterner
// ---------------------------------------------------------------------------

TEST(InternerTest, AssignsDenseIdsInFirstSeenOrder) {
  StringInterner interner;
  EXPECT_EQ(interner.Intern("alpha"), 0u);
  EXPECT_EQ(interner.Intern("beta"), 1u);
  EXPECT_EQ(interner.Intern("alpha"), 0u);
  EXPECT_EQ(interner.size(), 2u);
}

TEST(InternerTest, ViewRoundTrips) {
  StringInterner interner;
  const uint32_t id = interner.Intern("heraklion");
  EXPECT_EQ(interner.View(id), "heraklion");
}

TEST(InternerTest, FindWithoutInsert) {
  StringInterner interner;
  interner.Intern("present");
  EXPECT_EQ(interner.Find("present"), 0u);
  EXPECT_EQ(interner.Find("absent"), kInternNotFound);
}

TEST(InternerTest, EmptyStringIsInternable) {
  StringInterner interner;
  const uint32_t id = interner.Intern("");
  EXPECT_EQ(interner.View(id), "");
  EXPECT_EQ(interner.Find(""), id);
}

TEST(InternerTest, SurvivesRehashWithManyStrings) {
  StringInterner interner;
  std::vector<uint32_t> ids;
  for (int i = 0; i < 20000; ++i) {
    ids.push_back(interner.Intern("tok_" + std::to_string(i)));
  }
  EXPECT_EQ(interner.size(), 20000u);
  for (int i = 0; i < 20000; ++i) {
    EXPECT_EQ(interner.Find("tok_" + std::to_string(i)), ids[i]);
    EXPECT_EQ(interner.View(ids[i]), "tok_" + std::to_string(i));
  }
}

TEST(InternerTest, BinaryContentSafe) {
  StringInterner interner;
  const std::string weird{"a\0b", 3};
  const uint32_t id = interner.Intern(weird);
  EXPECT_EQ(interner.View(id), std::string_view(weird));
  EXPECT_EQ(interner.Find(weird), id);
  EXPECT_EQ(interner.Find("a"), kInternNotFound);
}

// ---------------------------------------------------------------------------
// TopK
// ---------------------------------------------------------------------------

TEST(TopKTest, KeepsLargest) {
  TopK<int> top(3);
  for (int v : {5, 1, 9, 3, 7, 2}) top.Push(v);
  EXPECT_EQ(top.TakeSortedDescending(), (std::vector<int>{9, 7, 5}));
}

TEST(TopKTest, FewerThanK) {
  TopK<int> top(10);
  top.Push(2);
  top.Push(1);
  EXPECT_EQ(top.TakeSortedDescending(), (std::vector<int>{2, 1}));
}

TEST(TopKTest, ZeroCapacityIgnoresAll) {
  TopK<int> top(0);
  top.Push(1);
  EXPECT_TRUE(top.empty());
}

TEST(TopKTest, MinExposesAdmissionThreshold) {
  TopK<int> top(2);
  top.Push(5);
  top.Push(9);
  ASSERT_TRUE(top.full());
  EXPECT_EQ(top.Min(), 5);
  top.Push(7);
  EXPECT_EQ(top.Min(), 7);
}

TEST(TopKTest, DuplicatesRetained) {
  TopK<int> top(3);
  for (int v : {4, 4, 4, 1}) top.Push(v);
  EXPECT_EQ(top.TakeSortedDescending(), (std::vector<int>{4, 4, 4}));
}

// ---------------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------------

TEST(TableTest, PrintsAlignedHeaderAndRows) {
  Table t({"name", "count"});
  t.AddRow().Cell("alpha").Cell(uint64_t{42});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("| alpha"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
}

TEST(TableTest, CsvEscapesSpecialCells) {
  Table t({"v"});
  t.AddRow().Cell("a,b");
  t.AddRow().Cell("say \"hi\"");
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_NE(os.str().find("\"a,b\""), std::string::npos);
  EXPECT_NE(os.str().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, DoubleFormatting) {
  Table t({"x"});
  t.AddRow().Cell(3.14159, 2);
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_NE(os.str().find("3.14"), std::string::npos);
  EXPECT_EQ(os.str().find("3.142"), std::string::npos);
}

TEST(TableTest, FormatHelpers) {
  EXPECT_EQ(FormatPercent(0.123, 1), "12.3%");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
  EXPECT_EQ(FormatCount(12), "12");
  EXPECT_EQ(FormatCount(0), "0");
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(257, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, PinnedPoolExecutesAllTasks) {
  // Pinning is a placement hint; the pool must behave identically with it
  // on — including when workers outnumber cores and wrap around.
  ThreadPool pool(8, ThreadPoolOptions{/*pin_threads=*/true});
  EXPECT_TRUE(pool.pin_threads());
  std::atomic<int> count{0};
  pool.ParallelFor(500, [&count](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPoolTest, UnpinnedIsTheDefault) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.pin_threads());
}

TEST(ThreadPoolTest, WorkerSlotsAreDistinctAndInRange) {
  ThreadPool pool(4);
  // The submitting thread is slot 0; each worker owns slot i + 1.
  EXPECT_EQ(ThreadPool::CurrentWorkerSlot(), 0u);
  std::mutex mu;
  std::set<size_t> seen;
  std::condition_variable cv;
  size_t arrived = 0;
  // Park every worker until all four checked in, so each reports from a
  // distinct thread.
  for (int i = 0; i < 4; ++i) {
    pool.Submit([&] {
      std::unique_lock<std::mutex> lock(mu);
      seen.insert(ThreadPool::CurrentWorkerSlot());
      if (++arrived == 4) cv.notify_all();
      cv.wait(lock, [&] { return arrived == 4; });
    });
  }
  pool.Wait();
  EXPECT_EQ(seen, (std::set<size_t>{1, 2, 3, 4}));
}

TEST(WorkerScratchTest, LocalIsPerThreadAndReused) {
  ThreadPool pool(3);
  WorkerScratch<std::vector<int>> scratch(&pool);
  EXPECT_EQ(scratch.num_slots(), 4u);  // 3 workers + inline slot 0
  // Every chunk appends to its thread's arena; arenas never interleave
  // within one chunk even when chunks race, so the total survives.
  std::atomic<int> total{0};
  pool.ParallelFor(300, [&](size_t i) {
    std::vector<int>& local = scratch.Local();
    local.push_back(static_cast<int>(i));
    total.fetch_add(1);
  });
  EXPECT_EQ(total.load(), 300);

  // Inline use without a pool lands every call in slot 0.
  WorkerScratch<std::vector<int>> inline_scratch(nullptr);
  EXPECT_EQ(inline_scratch.num_slots(), 1u);
  inline_scratch.Local().push_back(7);
  EXPECT_EQ(inline_scratch.Local().size(), 1u);
  EXPECT_EQ(inline_scratch.Local()[0], 7);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  // Elapsed must be non-negative and grow monotonically.
  const int64_t a = watch.ElapsedMicros();
  const int64_t b = watch.ElapsedMicros();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
  watch.Restart();
  EXPECT_GE(watch.ElapsedMicros(), 0);
}

TEST(StopwatchTest, UnitsAreConsistent) {
  Stopwatch watch;
  // Busy-wait a hair so the reading is non-trivially positive, then take
  // one micros reading and check the derived units scale from it (separate
  // Elapsed* calls would each re-read the clock, so compare with slack).
  while (watch.ElapsedMicros() < 200) {
  }
  const int64_t micros = watch.ElapsedMicros();
  EXPECT_GE(micros, 200);
  EXPECT_GE(watch.ElapsedMillis(), static_cast<double>(micros) / 1000.0);
  EXPECT_GE(watch.ElapsedSeconds(), static_cast<double>(micros) / 1e6);
  EXPECT_LT(watch.ElapsedSeconds(), 60.0);
}

TEST(StopwatchTest, RestartResetsTheEpoch) {
  Stopwatch watch;
  while (watch.ElapsedMicros() < 500) {
  }
  watch.Restart();
  // Immediately after Restart the elapsed time must be far below the
  // pre-restart reading (generous bound: half of it).
  EXPECT_LT(watch.ElapsedMicros(), 250);
}

// ---------------------------------------------------------------------------
// Logging
// ---------------------------------------------------------------------------

/// Installs a capturing sink for the test's lifetime and restores the
/// previous level + default sink on destruction, so tests stay isolated.
class ScopedLogCapture {
 public:
  explicit ScopedLogCapture(LogLevel level) : saved_level_(Logger::level()) {
    Logger::set_level(level);
    Logger::set_sink([this](LogLevel lvl, std::string_view msg) {
      records_.emplace_back(lvl, std::string(msg));
    });
  }
  ~ScopedLogCapture() {
    Logger::set_sink(nullptr);
    Logger::set_level(saved_level_);
  }

  const std::vector<std::pair<LogLevel, std::string>>& records() const {
    return records_;
  }

 private:
  LogLevel saved_level_;
  std::vector<std::pair<LogLevel, std::string>> records_;
};

TEST(LoggingTest, LevelNames) {
  EXPECT_EQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(LogLevelName(LogLevel::kInfo), "INFO");
  EXPECT_EQ(LogLevelName(LogLevel::kWarning), "WARN");
  EXPECT_EQ(LogLevelName(LogLevel::kError), "ERROR");
  EXPECT_EQ(LogLevelName(LogLevel::kOff), "OFF");
}

TEST(LoggingTest, SinkCapturesLevelAndMessage) {
  ScopedLogCapture capture(LogLevel::kDebug);
  MINOAN_LOG(kInfo) << "built " << 42 << " blocks";
  ASSERT_EQ(capture.records().size(), 1u);
  EXPECT_EQ(capture.records()[0].first, LogLevel::kInfo);
  // The message is prefixed "file:line] " with the path stripped to its
  // basename.
  const std::string& msg = capture.records()[0].second;
  EXPECT_NE(msg.find("util_test.cc:"), std::string::npos);
  EXPECT_EQ(msg.find('/'), std::string::npos);
  EXPECT_NE(msg.find("] built 42 blocks"), std::string::npos);
}

TEST(LoggingTest, ActiveLevelFiltersLowerSeverities) {
  ScopedLogCapture capture(LogLevel::kWarning);
  MINOAN_LOG(kDebug) << "dropped";
  MINOAN_LOG(kInfo) << "dropped too";
  MINOAN_LOG(kWarning) << "kept";
  MINOAN_LOG(kError) << "kept too";
  ASSERT_EQ(capture.records().size(), 2u);
  EXPECT_EQ(capture.records()[0].first, LogLevel::kWarning);
  EXPECT_EQ(capture.records()[1].first, LogLevel::kError);
}

TEST(LoggingTest, OffSilencesEverything) {
  ScopedLogCapture capture(LogLevel::kOff);
  MINOAN_LOG(kError) << "never seen";
  EXPECT_TRUE(capture.records().empty());
}

TEST(LoggingTest, FilteredStatementDoesNotEvaluateOperands) {
  ScopedLogCapture capture(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return "costly";
  };
  MINOAN_LOG(kDebug) << expensive();
  EXPECT_EQ(evaluations, 0);
  MINOAN_LOG(kError) << expensive();
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(capture.records().size(), 1u);
}

}  // namespace
}  // namespace minoan
