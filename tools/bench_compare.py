#!/usr/bin/env python3
"""CI perf-regression gate over the BENCH_*.json thread-sweep files.

Compares a freshly produced bench JSON (bench_t2_blocking /
bench_t3_metablocking output) against the checked-in baseline:

  tools/bench_compare.py --baseline bench/baselines/BENCH_t2_blocking.json \
                         --current BENCH_t2_blocking.json

Fails (exit 1) when
  * any sweep entry reports identical=false (parallel output diverged), or
  * single-thread wall time regressed more than --max-regression (default
    15%) against the baseline entry with the same phase/pruning key, or
  * the two files are not comparable (different bench, scale, or entities).

Multi-thread timings are reported but never gated: CI runners make weak
promises about spare cores, while the single-thread number is the stable
throughput signal. Wall-clock baselines are only meaningful against the
machine class that recorded them, so when the recorded
hardware_concurrency differs from the current machine's, timing
regressions downgrade to warnings (the identical=false gate still fails).
Under GitHub Actions the downgrade is surfaced as a `::warning::`
workflow annotation so it shows up on the run summary instead of being a
silent log line.

Reseeding a baseline (arms the timing gate):

  1. Use a machine of the CI runner class — >= 4 hardware cores, no
     thread pinning. The thread-sweep harnesses run 8-thread legs; on a
     2-core runner those numbers are meaningless and the recorded
     hardware_concurrency will disarm the gate for everyone else.
  2. Build Release and run the harness three times; keep the last
     BENCH_*.json (warm page cache), or download the `bench-json`
     artifact from a green CI run of the same runner class.
  3. tools/bench_compare.py --update \
         --baseline bench/baselines/BENCH_<x>.json --current BENCH_<x>.json
  4. Commit the refreshed baseline together with the change that moved
     the numbers, and say why in the commit message.

With --stats STATS.json (a `minoan resolve --metrics-out` file, schema
minoan-stats-v1) the tool additionally prints a per-phase wall-time
breakdown — phase name, milliseconds, share of the total, output
cardinality — plus thread-pool utilization and peak RSS. --stats can also
be used on its own, without --baseline/--current, as a quick pretty-printer:

  tools/bench_compare.py --stats metrics.json
"""

import argparse
import json
import os
import shutil
import sys


# Measurement fields: vary run to run, never part of an entry's identity.
# "advisory" marks entries whose timing is reported but never gated (e.g.
# forced-spill modes, which are disk-I/O bound and inherently jittery); the
# identical=false gate still applies to them.
MEASUREMENT_FIELDS = (
    "ms",
    "speedup",
    "identical",
    "advisory",
    "runs_spilled",
    "spill_bytes",
    "peak_rss_bytes",
)


def entry_key(entry):
    """Identity of one sweep entry: every field except the measurements."""
    return tuple(
        sorted(
            (k, v) for k, v in entry.items() if k not in MEASUREMENT_FIELDS
        )
    )


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"bench_compare: cannot read {path}: {err}")


def print_stats_breakdown(path):
    """Pretty-prints the per-phase timing breakdown of a minoan-stats-v1
    file (the `minoan resolve --metrics-out` output)."""
    stats = load(path)
    schema = stats.get("schema")
    if schema != "minoan-stats-v1":
        sys.exit(
            f"bench_compare: {path} is not a minoan-stats-v1 file "
            f"(schema {schema!r})"
        )
    phases = stats.get("phases", [])
    total_ms = sum(p.get("millis", 0.0) for p in phases)
    print(f"bench_compare: phase breakdown from {path}")
    name_width = max([len(p.get("name", "")) for p in phases] + [5])
    for phase in phases:
        millis = phase.get("millis", 0.0)
        share = (100.0 * millis / total_ms) if total_ms > 0 else 0.0
        print(
            f"  {phase.get('name', '?'):<{name_width}}  "
            f"{millis:>10.2f} ms  {share:>5.1f}%  "
            f"cardinality {phase.get('cardinality', 0)}"
        )
    print(f"  {'total':<{name_width}}  {total_ms:>10.2f} ms")
    pool = stats.get("pool", {})
    workers = pool.get("worker_busy_micros", [])
    if pool.get("tasks_executed"):
        busy_ms = pool.get("busy_micros_total", 0) / 1000.0
        print(
            f"  pool: {pool.get('tasks_executed')} tasks across "
            f"{len(workers)} workers, {busy_ms:.2f} ms busy, "
            f"{pool.get('queue_wait_micros', 0) / 1000.0:.2f} ms queue wait"
        )
    progress = stats.get("progress", [])
    if progress:
        last = progress[-1]
        print(
            f"  progress: {len(progress)} samples, final "
            f"{last.get('matches', 0)} matches / "
            f"{last.get('comparisons', 0)} comparisons"
        )
    rss = stats.get("peak_rss_bytes", 0)
    if rss:
        print(f"  peak rss: {rss / (1 << 20):.1f} MiB")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline")
    parser.add_argument("--current")
    parser.add_argument(
        "--stats",
        help="minoan-stats-v1 JSON (--metrics-out output); prints the "
        "per-phase timing breakdown",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.15,
        help="maximum tolerated single-thread slowdown (fraction, "
        "default 0.15)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="copy --current over --baseline instead of comparing",
    )
    args = parser.parse_args()

    if args.stats:
        print_stats_breakdown(args.stats)
        if not (args.baseline or args.current):
            return 0
        print()
    if not (args.baseline and args.current):
        parser.error("--baseline and --current are required unless running "
                     "--stats on its own")

    if args.update:
        shutil.copyfile(args.current, args.baseline)
        print(f"bench_compare: baseline {args.baseline} updated from "
              f"{args.current}")
        return 0

    baseline = load(args.baseline)
    current = load(args.current)

    failures = []
    for field in ("bench", "scale", "entities"):
        if baseline.get(field) != current.get(field):
            failures.append(
                f"not comparable: {field} differs "
                f"(baseline {baseline.get(field)!r}, "
                f"current {current.get(field)!r})"
            )
    # Machine class = core count AND pinning mode: a pinned run on the same
    # silicon has different cache behavior than an unpinned one, so timings
    # only gate against a baseline recorded the same way.
    same_machine_class = baseline.get("hardware_concurrency") == current.get(
        "hardware_concurrency"
    ) and baseline.get("pin_threads") == current.get("pin_threads")
    if not same_machine_class:
        detail = (
            "baseline was recorded on a different machine class "
            f"(hardware_concurrency {baseline.get('hardware_concurrency')} "
            f"vs {current.get('hardware_concurrency')}, pin_threads "
            f"{baseline.get('pin_threads')} vs "
            f"{current.get('pin_threads')}); timing regressions are "
            "advisory until the baseline is reseeded with --update on this "
            "runner class (>= 4 cores; see the module docstring)"
        )
        print(f"bench_compare: WARNING: {detail}")
        if os.environ.get("GITHUB_ACTIONS") == "true":
            # Workflow annotation: visible on the Actions run summary, so
            # the disarmed timing gate is never a silent downgrade.
            print(
                "::warning title=bench baseline machine-class mismatch"
                f"::{args.baseline}: {detail}"
            )
    base_entries = {entry_key(e): e for e in baseline.get("sweep", [])}
    if not base_entries:
        failures.append("baseline has no sweep entries")

    checked = 0
    for entry in current.get("sweep", []):
        label = ", ".join(
            f"{k}={v}"
            for k, v in entry.items()
            if k not in MEASUREMENT_FIELDS
        )
        if entry.get("identical") is False:
            failures.append(f"parallel output diverged: {label}")
        base = base_entries.get(entry_key(entry))
        if base is None:
            print(f"bench_compare: note: no baseline entry for {label}")
            continue
        if entry.get("threads") != 1:
            continue  # informational only; see module docstring
        base_ms, cur_ms = base.get("ms"), entry.get("ms")
        if not base_ms or base_ms <= 0:
            failures.append(f"baseline ms invalid for {label}")
            continue
        checked += 1
        ratio = (cur_ms - base_ms) / base_ms
        advisory = bool(entry.get("advisory"))
        verdict = "OK" if ratio <= args.max_regression else (
            "SLOW (advisory)" if advisory else "REGRESSED"
        )
        print(
            f"bench_compare: {verdict}: {label} "
            f"baseline {base_ms:.2f} ms, current {cur_ms:.2f} ms "
            f"({ratio:+.1%})"
        )
        if ratio > args.max_regression and same_machine_class and not advisory:
            failures.append(
                f"single-thread regression >{args.max_regression:.0%}: "
                f"{label} ({ratio:+.1%})"
            )

    if checked == 0:
        failures.append("no single-thread entries were compared")
    if failures:
        for failure in failures:
            print(f"bench_compare: FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"bench_compare: OK ({checked} single-thread entries within "
          f"{args.max_regression:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
