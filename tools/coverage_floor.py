#!/usr/bin/env python3
"""Advisory line-coverage floor over an lcov tracefile.

Reads a .info tracefile (lcov --capture output), computes line coverage
for every file under --path (repo-relative match, default src/extmem/),
prints a per-file table, and compares the aggregate against --floor.

The floor is ADVISORY by default: a shortfall prints a `::warning::`
workflow annotation (visible on the GitHub Actions run summary) and exits
0, so refactors never get blocked on a coverage number — but the drop is
never silent. Pass --strict to turn the shortfall into exit 1.

Usage (the CI coverage job):

  lcov --capture --directory build-cov --output-file coverage.info
  tools/coverage_floor.py --tracefile coverage.info \
      --path src/extmem/ --floor 80
"""

import argparse
import os
import sys
from collections import defaultdict


def parse_tracefile(path):
    """Returns {source_file: (lines_hit, lines_found)} from an lcov .info
    file. Only DA: records matter for line coverage; duplicate records for
    one (file, line) are merged by summing hit counts, mirroring lcov."""
    per_file = defaultdict(dict)  # file -> {line: hits}
    current = None
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for raw in fh:
                line = raw.strip()
                if line.startswith("SF:"):
                    current = line[3:]
                elif line.startswith("DA:") and current is not None:
                    fields = line[3:].split(",")
                    if len(fields) < 2:
                        continue
                    try:
                        lineno, hits = int(fields[0]), int(fields[1])
                    except ValueError:
                        continue
                    lines = per_file[current]
                    lines[lineno] = lines.get(lineno, 0) + hits
                elif line == "end_of_record":
                    current = None
    except OSError as err:
        sys.exit(f"coverage_floor: cannot read {path}: {err}")
    return {
        f: (sum(1 for h in lines.values() if h > 0), len(lines))
        for f, lines in per_file.items()
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tracefile", required=True,
                        help="lcov .info tracefile (lcov --capture output)")
    parser.add_argument("--path", default="src/extmem/",
                        help="repo-relative path prefix to measure "
                        "(default src/extmem/)")
    parser.add_argument("--floor", type=float, default=80.0,
                        help="minimum aggregate line coverage in percent "
                        "(default 80)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on a shortfall instead of warning")
    args = parser.parse_args()

    coverage = parse_tracefile(args.tracefile)
    needle = args.path.rstrip("/") + "/"
    matched = {
        f: hit_found
        for f, hit_found in sorted(coverage.items())
        if needle in f.replace("\\", "/")
    }
    if not matched:
        sys.exit(
            f"coverage_floor: no files under {args.path!r} in "
            f"{args.tracefile} — wrong --path, or the tests never ran?"
        )

    total_hit = total_found = 0
    width = max(len(os.path.relpath(f)) for f in matched)
    for source, (hit, found) in matched.items():
        total_hit += hit
        total_found += found
        pct = 100.0 * hit / found if found else 100.0
        print(f"  {os.path.relpath(source):<{width}}  "
              f"{hit:>5}/{found:<5}  {pct:6.1f}%")
    aggregate = 100.0 * total_hit / total_found if total_found else 100.0
    print(f"coverage_floor: {args.path} aggregate {aggregate:.1f}% "
          f"({total_hit}/{total_found} lines), floor {args.floor:.1f}%")

    if aggregate + 1e-9 < args.floor:
        message = (
            f"line coverage of {args.path} is {aggregate:.1f}%, below the "
            f"{args.floor:.1f}% floor"
        )
        if os.environ.get("GITHUB_ACTIONS") == "true":
            print(f"::warning title=coverage floor::{message}")
        print(f"coverage_floor: {'FAIL' if args.strict else 'WARNING'}: "
              f"{message}", file=sys.stderr)
        return 1 if args.strict else 0
    print("coverage_floor: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
