#!/usr/bin/env bash
# Formatting gate. Exits non-zero on any violation.
#
#   tools/format_check.sh          check, fail on drift
#   tools/format_check.sh --fix    rewrite offending files in place
#
# Coverage: C++ sources under src/, tests/, tools/, bench/, and examples/
# (directories that exist are discovered; a missing one is not an error),
# plus the Python and shell tooling under tools/ and bench/ (syntax +
# mechanical checks — clang-format does not apply to them).
#
# With clang-format on PATH the C++ check is `clang-format --dry-run
# --Werror` against the repo's .clang-format. Without it, a built-in
# fallback still enforces the mechanical rules of the style: no tabs, no
# trailing whitespace, a final newline, and an 80-character limit (counted
# in characters, not bytes; lines carrying IRIs/raw N-Triples are exempt
# since the format is line-based and cannot wrap).
set -u

fix=0
[ "${1:-}" = "--fix" ] && fix=1

root="$(cd "$(dirname "$0")/.." && pwd)"
dirs=""
for d in src tests tools bench examples; do
  [ -d "$root/$d" ] && dirs="$dirs $root/$d"
done
# shellcheck disable=SC2086
files=$(find $dirs \( -name '*.cc' -o -name '*.h' -o -name '*.cpp' \) | sort)
# shellcheck disable=SC2086
script_files=$(find $dirs \( -name '*.py' -o -name '*.sh' \) | sort)

failures=0

# ---- mechanical checks (applied to scripts always, to C++ only in the
# ---- no-clang-format fallback) ---------------------------------------------
check_mechanical() {
  f="$1"
  rel="${f#"$root"/}"
  if grep -qP '\t' "$f"; then
    echo "format_check: tab character in $rel"
    failures=$((failures + 1))
  fi
  if grep -qE ' +$' "$f"; then
    if [ "$fix" = 1 ]; then
      sed -i 's/ *$//' "$f"
    else
      echo "format_check: trailing whitespace in $rel"
      failures=$((failures + 1))
    fi
  fi
  if [ -n "$(tail -c 1 "$f")" ]; then
    if [ "$fix" = 1 ]; then
      echo >> "$f"
    else
      echo "format_check: missing final newline in $rel"
      failures=$((failures + 1))
    fi
  fi
  long=$(grep -nP '^.{81,}' "$f" | grep -v http | cut -d: -f1)
  if [ -n "$long" ]; then
    for line in $long; do
      echo "format_check: over 80 columns in $rel:$line"
      failures=$((failures + 1))
    done
  fi
}

export LC_ALL=C.UTF-8

# ---- scripts: syntax + mechanical ------------------------------------------
script_count=0
for f in $script_files; do
  rel="${f#"$root"/}"
  script_count=$((script_count + 1))
  case "$f" in
    *.py)
      # ast.parse, not py_compile: a pure syntax check that never writes
      # __pycache__ into the tree.
      if command -v python3 >/dev/null 2>&1 &&
         ! python3 -c \
           'import ast, sys; ast.parse(open(sys.argv[1]).read())' \
           "$f" 2>/dev/null; then
        echo "format_check: python syntax error in $rel"
        failures=$((failures + 1))
      fi
      ;;
    *.sh)
      if ! bash -n "$f" 2>/dev/null; then
        echo "format_check: shell syntax error in $rel"
        failures=$((failures + 1))
      fi
      ;;
  esac
  check_mechanical "$f"
done

# ---- C++ sources -----------------------------------------------------------
if command -v clang-format >/dev/null 2>&1; then
  for f in $files; do
    if [ "$fix" = 1 ]; then
      clang-format -i "$f"
    elif ! clang-format --dry-run --Werror "$f" >/dev/null 2>&1; then
      echo "format_check: needs reformat: ${f#"$root"/}"
      failures=$((failures + 1))
    fi
  done
  if [ "$failures" -gt 0 ]; then
    echo "format_check: FAILED ($failures violation(s);" \
         "run tools/format_check.sh --fix)"
    exit 1
  fi
  echo "format_check: OK (clang-format, $(echo "$files" | wc -l) files" \
       "+ $script_count scripts)"
  exit 0
fi

# ---- fallback: mechanical checks only --------------------------------------
for f in $files; do
  check_mechanical "$f"
done

if [ "$failures" -gt 0 ]; then
  echo "format_check: FAILED ($failures violation(s))"
  exit 1
fi
echo "format_check: OK (fallback checks, $(echo "$files" | wc -l) files" \
     "+ $script_count scripts)"
exit 0
