#!/usr/bin/env bash
# Formatting gate. Currently a permissive stub: runs clang-format in dry-run
# mode when available and reports drift without failing the build; tighten to
# `--Werror` + non-zero exit once the tree is formatted.
set -u

if ! command -v clang-format >/dev/null 2>&1; then
  echo "format_check: clang-format not installed; skipping"
  exit 0
fi

root="$(cd "$(dirname "$0")/.." && pwd)"
files=$(find "$root/src" "$root/tests" "$root/tools" "$root/bench" \
             "$root/examples" \
             -name '*.cc' -o -name '*.h' -o -name '*.cpp' 2>/dev/null)

drift=0
for f in $files; do
  if ! clang-format --dry-run "$f" >/dev/null 2>&1; then
    echo "format_check: would reformat $f"
    drift=$((drift + 1))
  fi
done

echo "format_check: $drift file(s) with drift (advisory only)"
exit 0
