#!/usr/bin/env bash
# Formatting gate. Exits non-zero on any violation.
#
#   tools/format_check.sh          check, fail on drift
#   tools/format_check.sh --fix    rewrite offending files in place
#
# With clang-format on PATH the check is `clang-format --dry-run --Werror`
# against the repo's .clang-format. Without it, a built-in fallback still
# enforces the mechanical rules of the style: no tabs, no trailing
# whitespace, a final newline, and an 80-character limit (counted in
# characters, not bytes; lines carrying IRIs/raw N-Triples are exempt since
# the format is line-based and cannot wrap).
set -u

fix=0
[ "${1:-}" = "--fix" ] && fix=1

root="$(cd "$(dirname "$0")/.." && pwd)"
files=$(find "$root/src" "$root/tests" "$root/tools" "$root/bench" \
             "$root/examples" \
             \( -name '*.cc' -o -name '*.h' -o -name '*.cpp' \) | sort)

failures=0

if command -v clang-format >/dev/null 2>&1; then
  for f in $files; do
    if [ "$fix" = 1 ]; then
      clang-format -i "$f"
    elif ! clang-format --dry-run --Werror "$f" >/dev/null 2>&1; then
      echo "format_check: needs reformat: ${f#"$root"/}"
      failures=$((failures + 1))
    fi
  done
  if [ "$failures" -gt 0 ]; then
    echo "format_check: FAILED ($failures file(s); run tools/format_check.sh --fix)"
    exit 1
  fi
  echo "format_check: OK (clang-format, $(echo "$files" | wc -l) files)"
  exit 0
fi

# ---- fallback: mechanical checks only -------------------------------------
export LC_ALL=C.UTF-8
for f in $files; do
  rel="${f#"$root"/}"
  if grep -qP '\t' "$f"; then
    echo "format_check: tab character in $rel"
    failures=$((failures + 1))
  fi
  if grep -qE ' +$' "$f"; then
    if [ "$fix" = 1 ]; then
      sed -i 's/ *$//' "$f"
    else
      echo "format_check: trailing whitespace in $rel"
      failures=$((failures + 1))
    fi
  fi
  if [ -n "$(tail -c 1 "$f")" ]; then
    if [ "$fix" = 1 ]; then
      echo >> "$f"
    else
      echo "format_check: missing final newline in $rel"
      failures=$((failures + 1))
    fi
  fi
  long=$(grep -nP '^.{81,}' "$f" | grep -v http | cut -d: -f1)
  if [ -n "$long" ]; then
    for line in $long; do
      echo "format_check: over 80 columns in $rel:$line"
      failures=$((failures + 1))
    done
  fi
done

if [ "$failures" -gt 0 ]; then
  echo "format_check: FAILED ($failures violation(s))"
  exit 1
fi
echo "format_check: OK (fallback checks, $(echo "$files" | wc -l) files)"
exit 0
