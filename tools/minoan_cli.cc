// minoan — command-line front end to the MinoanER library.
//
//   minoan generate --out DIR [--entities N] [--kbs N] [--center N]
//                   [--seed S] [--periphery-overlap F]
//       Synthesizes a LOD cloud (N-Triples files + ground truth).
//
//   minoan stats DIR
//       Prints the cloud-structure statistics of the .nt/.ttl files in DIR.
//
//   minoan resolve DIR [--threshold F] [--budget N] [--benefit NAME]
//                  [--seeds] [--threads N] [--pin-threads]
//                  [--blocker NAME] [--filter-ratio F] [--out FILE]
//                  [--step-budget N] [--stream]
//                  [--memory-budget BYTES] [--spill-dir DIR]
//                  [--metrics-out FILE] [--trace-out FILE]
//                  [--progress-every N]
//       Resolves all KBs in DIR and writes discovered owl:sameAs links.
//       Scores against DIR/ground_truth.tsv when present. With
//       --step-budget N the comparison budget is spent in increments of N
//       through the pay-as-you-go Session API (identical results); with
//       --stream every confirmed match is printed as it is discovered.
//       --memory-budget caps the RAM the blocking-postings and vote-shard
//       shuffles may hold (suffixes k/m/g accepted, e.g. 512m); overflow
//       spills sorted runs to temp files under --spill-dir (default: the
//       system temp dir) with byte-identical results.
//       Observability (out-of-band; results are identical with or without):
//       --metrics-out writes the flat stats JSON (per-phase wall times,
//       progressive-quality curve, pool utilization, spill counters, peak
//       RSS); --trace-out writes a Chrome-trace JSON of the phase spans
//       (load it in chrome://tracing or ui.perfetto.dev); --progress-every N
//       samples the quality curve every N comparisons (defaults to 1000
//       when --metrics-out is given, else off).
//
//   minoan session checkpoint DIR --state FILE [--step-budget N] [opts]
//   minoan session resume     DIR --state FILE [--step-budget N] [opts]
//       Budgeted resolution that survives process restarts: `checkpoint`
//       opens a session, spends --step-budget comparisons, and saves the
//       loop state to FILE; `resume` restores it (same DIR and options
//       required), spends the next increment, and re-saves — repeat until
//       the queue drains, at which point the final report prints. The match
//       sequence is byte-identical to one uninterrupted run.
//
//   minoan online DIR [--script FILE] [--threshold F] [--pis] [--seeds]
//                 [--threads N] [--benefit NAME]
//       Serves the KBs in DIR through the online incremental engine,
//       replaying an ingest/resolve/query command script (see
//       core/online_session.h for the grammar). Without --script, every
//       source is ingested, the queue is fully resolved, and stats print.
//
//   minoan serve [--listen HOST:PORT] [--max-sessions N]
//                [--evict-after SECONDS] [--state-dir DIR] [--threads N]
//                [--installment N] [--metrics-out FILE]
//                [--stats-every SECS] [--trace-out FILE] [--event-log FILE]
//                [--slow-request-millis MS]
//       Runs the resolution service (multi-tenant session server). The
//       observability plane is out-of-band — served results are identical
//       with or without it. --metrics-out writes the stats JSON (process
//       counters plus the per-tenant breakdown under "tenants");
//       --stats-every N re-exports a rolling snapshot every N seconds via
//       atomic rename, so a scraper never reads a torn file; --trace-out
//       records each request as a Chrome-trace span tagged with request and
//       session id; --event-log writes a JSONL ring of slow requests,
//       evictions, and restores; --slow-request-millis sets the slowness
//       threshold (default 250).
//
//   minoan connect --port N [--host H] [--script FILE]
//       Interactive (or scripted) client for a running server. The `stats`
//       command prints the legacy live/total session counts; `stats --full`
//       fetches the v2 body and renders the whole registry snapshot plus
//       the per-tenant table.
//
// All subcommands are deterministic for a fixed seed.

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/minoan_er.h"
#include "core/online_session.h"
#include "core/session.h"
#include "datagen/lod_generator.h"
#include "eval/cluster_metrics.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "kb/stats.h"
#include "matching/matcher.h"
#include "obs/report.h"
#include "rdf/ntriples.h"
#include "rdf/turtle.h"
#include "server/client.h"
#include "server/server.h"
#include "util/cli_flags.h"
#include "util/table.h"

using namespace minoan;  // NOLINT

namespace {

using cli::Flags;

/// A typo like --theshold must stop the run, not be silently ignored while
/// the verb proceeds with defaults. Returns false after printing the
/// specific offending flags; callers exit 2.
bool CheckFlags(const char* verb, const Flags& flags,
                std::initializer_list<std::string_view> allowed) {
  const std::vector<std::string> unknown = flags.UnknownFlags(allowed);
  if (unknown.empty()) return true;
  for (const std::string& name : unknown) {
    std::fprintf(stderr, "error: unknown flag --%s for 'minoan %s'\n",
                 name.c_str(), verb);
  }
  std::fprintf(stderr, "run 'minoan' without arguments for usage\n");
  return false;
}

/// Flags shared by resolve and session (the workflow surface).
const std::initializer_list<std::string_view> kResolveFlags = {
    "threshold",     "budget",      "benefit",     "seeds",
    "threads",       "pin-threads", "filter-ratio", "out",
    "step-budget",   "stream",      "memory-budget", "spill-dir",
    "metrics-out",   "trace-out",   "progress-every", "state",
    "blocker"};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

Result<std::vector<std::string>> ListRdfFiles(const std::string& dir) {
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string ext = entry.path().extension().string();
    if (ext == ".nt" || ext == ".ttl" || ext == ".turtle") {
      files.push_back(entry.path().string());
    }
  }
  if (ec) {
    return Status::IoError("cannot read directory " + dir + ": " +
                           ec.message());
  }
  if (files.empty()) {
    return Status::NotFound("no .nt/.ttl files in " + dir);
  }
  std::sort(files.begin(), files.end());
  return files;
}

Result<EntityCollection> LoadDirectory(const std::string& dir) {
  MINOAN_ASSIGN_OR_RETURN(std::vector<std::string> files, ListRdfFiles(dir));
  EntityCollection collection;
  for (const std::string& file : files) {
    MINOAN_ASSIGN_OR_RETURN(std::vector<rdf::Triple> triples,
                            rdf::LoadTriples(file));
    const std::string name = std::filesystem::path(file).stem().string();
    MINOAN_ASSIGN_OR_RETURN(uint32_t kb,
                            collection.AddKnowledgeBase(name, triples));
    std::printf("  %-26s %8zu triples -> KB %u\n", name.c_str(),
                triples.size(), kb);
  }
  MINOAN_RETURN_IF_ERROR(collection.Finalize());
  return collection;
}

int CmdGenerate(const Flags& flags) {
  if (!CheckFlags("generate", flags,
                  {"out", "entities", "kbs", "center", "seed",
                   "periphery-overlap", "sameas-rate"})) {
    return 2;
  }
  const std::string out = flags.Get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "generate requires --out DIR\n");
    return 2;
  }
  datagen::LodCloudConfig config;
  config.seed = flags.GetInt("seed", 42);
  config.num_real_entities =
      static_cast<uint32_t>(flags.GetInt("entities", 2000));
  config.num_kbs = static_cast<uint32_t>(flags.GetInt("kbs", 6));
  config.center_kbs = static_cast<uint32_t>(flags.GetInt("center", 2));
  config.periphery_token_overlap =
      flags.GetDouble("periphery-overlap", config.periphery_token_overlap);
  config.same_as_rate = flags.GetDouble("sameas-rate", config.same_as_rate);
  auto cloud = datagen::GenerateLodCloud(config);
  if (!cloud.ok()) return Fail(cloud.status());
  if (Status st = cloud->WriteTo(out); !st.ok()) return Fail(st);
  std::printf("wrote %u KBs (%llu triples, %zu truth pairs) to %s\n",
              config.num_kbs,
              static_cast<unsigned long long>(cloud->total_triples()),
              cloud->truth.size(), out.c_str());
  return 0;
}

int CmdStats(const Flags& flags) {
  if (!CheckFlags("stats", flags, {})) return 2;
  if (flags.positional().empty()) {
    std::fprintf(stderr, "stats requires a directory\n");
    return 2;
  }
  auto collection = LoadDirectory(flags.positional()[0]);
  if (!collection.ok()) return Fail(collection.status());
  const CloudStats stats = ComputeCloudStats(*collection);
  Table summary({"metric", "value"});
  summary.AddRow().Cell("knowledge bases").Cell(uint64_t{stats.num_kbs});
  summary.AddRow().Cell("descriptions").Cell(uint64_t{stats.num_entities});
  summary.AddRow().Cell("triples").Cell(stats.num_triples);
  summary.AddRow().Cell("owl:sameAs links").Cell(stats.num_same_as);
  summary.AddRow().Cell("vocabularies").Cell(uint64_t{stats.num_vocabularies});
  summary.AddRow()
      .Cell("proprietary vocabularies")
      .Cell(FormatPercent(stats.proprietary_ratio));
  summary.AddRow().Cell("link Gini").Cell(stats.link_gini, 3);
  summary.AddRow()
      .Cell("top-decile link share")
      .Cell(FormatPercent(stats.top_decile_link_share));
  summary.Print(std::cout);

  Table per_kb({"kb", "entities", "triples", "out_links", "in_links",
                "partners"});
  for (const KbLinkStats& kb : stats.per_kb) {
    per_kb.AddRow()
        .Cell(kb.name)
        .Cell(uint64_t{kb.entities})
        .Cell(kb.triples)
        .Cell(kb.out_links)
        .Cell(kb.in_links)
        .Cell(uint64_t{kb.linked_kbs});
  }
  per_kb.Print(std::cout);
  return 0;
}

BenefitModel ParseBenefit(const std::string& name) {
  if (name == "quantity") return BenefitModel::kQuantity;
  if (name == "attr") return BenefitModel::kAttributeCompleteness;
  if (name == "relationship") return BenefitModel::kRelationshipCompleteness;
  return BenefitModel::kEntityCoverage;
}

/// Workflow options shared by `resolve` and `session`; exits via non-OK
/// Status on invalid flag values (specific message, non-zero exit code).
Result<WorkflowOptions> ParseWorkflowOptions(const std::string& verb,
                                             const Flags& flags) {
  WorkflowOptions options;
  options.progressive.matcher.threshold = flags.GetDouble("threshold", 0.35);
  options.progressive.matcher.budget = flags.GetInt("budget", 0);
  options.progressive.benefit =
      ParseBenefit(flags.Get("benefit", "coverage"));
  options.use_same_as_seeds = flags.Has("seeds");
  options.filter_ratio =
      flags.GetDouble("filter-ratio", options.filter_ratio);
  // --blocker NAME: which blocking method starts the workflow. Every choice
  // runs under --memory-budget with byte-identical output to its in-memory
  // run (the character-level methods included).
  const std::string blocker = flags.Get("blocker", "token+pis");
  if (blocker == "token") {
    options.blocker = BlockerChoice::kToken;
  } else if (blocker == "pis") {
    options.blocker = BlockerChoice::kPis;
  } else if (blocker == "attr-cluster") {
    options.blocker = BlockerChoice::kAttributeClustering;
  } else if (blocker == "token+pis") {
    options.blocker = BlockerChoice::kTokenPlusPis;
  } else if (blocker == "qgram") {
    options.blocker = BlockerChoice::kQGram;
  } else if (blocker == "sorted-nbhd") {
    options.blocker = BlockerChoice::kSortedNeighborhood;
  } else {
    return Status::InvalidArgument(
        verb +
        ": --blocker must be one of token|pis|attr-cluster|token+pis|"
        "qgram|sorted-nbhd, got \"" +
        blocker + "\"");
  }
  // --memory-budget N[k|m|g]: cap on the in-RAM shuffle state (blocking
  // postings + vote shards); overflow spills sorted runs under --spill-dir.
  // Deterministic: the resolution result is byte-identical either way.
  options.memory.shuffle_budget_bytes = flags.GetByteSize("memory-budget", 0);
  options.memory.spill_dir = flags.Get("spill-dir", "");
  if (!options.memory.spill_dir.empty() && !options.memory.enabled()) {
    return Status::InvalidArgument(
        verb + ": --spill-dir has no effect without --memory-budget");
  }
  // --threads N: workflow-wide worker count (0 = hardware concurrency).
  // Deterministic: the resolution result is identical for every value.
  const std::string threads_arg = flags.Get("threads", "1");
  uint64_t threads = 0;
  const auto [end, ec] = std::from_chars(
      threads_arg.data(), threads_arg.data() + threads_arg.size(), threads);
  if (ec != std::errc() || end != threads_arg.data() + threads_arg.size() ||
      threads > 1024) {
    return Status::InvalidArgument(verb +
                                   ": --threads must be an integer in "
                                   "[0, 1024], got \"" +
                                   threads_arg + "\"");
  }
  options.num_threads = static_cast<uint32_t>(threads);
  // --pin-threads: pin pool workers to cores (Linux; no-op elsewhere).
  // A cache-placement hint only — results are identical either way.
  options.pin_threads = flags.Has("pin-threads");
  // Observability: --trace-out switches phase-span recording on;
  // --progress-every sets the quality-curve cadence (default 1000 when a
  // metrics file was requested, so --metrics-out alone yields a curve).
  options.obs.enable_trace = flags.Has("trace-out");
  options.obs.progress_every =
      flags.GetInt("progress-every", flags.Has("metrics-out") ? 1000 : 0);
  if (Status st = options.Validate(); !st.ok()) {
    return Status(st.code(), verb + ": " + st.message());
  }
  return options;
}

/// Writes the --metrics-out / --trace-out files when requested. Called
/// after the run (resolve) or after the final/partial step (session).
int WriteObsOutputs(const Flags& flags, const ResolutionSession& session) {
  const std::string metrics_path = flags.Get("metrics-out", "");
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) return Fail(Status::IoError("cannot write " + metrics_path));
    session.WriteStatsJson(out);
    std::printf("wrote run stats to %s\n", metrics_path.c_str());
  }
  const std::string trace_path = flags.Get("trace-out", "");
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) return Fail(Status::IoError("cannot write " + trace_path));
    session.WriteTraceJson(out);
    std::printf("wrote phase trace to %s (open in chrome://tracing or "
                "ui.perfetto.dev)\n",
                trace_path.c_str());
  }
  return 0;
}

/// --stream sink: prints every confirmed match the moment it lands.
class StreamingObserver : public MatchObserver {
 public:
  explicit StreamingObserver(const EntityCollection& collection)
      : collection_(&collection) {}

  void OnPhase(const PhaseStats& phase) override {
    std::printf("phase %-22s %10.2f ms  %llu\n", phase.name.c_str(),
                phase.millis,
                static_cast<unsigned long long>(phase.output_cardinality));
  }

  void OnMatch(const MatchEvent& event) override {
    std::printf("match @%-8llu %.3f  %s  <->  %s\n",
                static_cast<unsigned long long>(event.comparisons_done),
                event.similarity,
                std::string(collection_->EntityIri(event.a)).c_str(),
                std::string(collection_->EntityIri(event.b)).c_str());
  }

 private:
  const EntityCollection* collection_;
};

/// Shared tail of `resolve` and `session resume`: summary, scoring against
/// ground truth when present, and the discovered-links file.
int ReportAndWriteLinks(const std::string& dir, const Flags& flags,
                        const EntityCollection& collection,
                        const ResolutionReport& report) {
  std::cout << report.Summary();

  const std::string truth_path = dir + "/ground_truth.tsv";
  if (std::filesystem::exists(truth_path)) {
    auto truth = GroundTruth::FromTsv(truth_path, collection);
    if (truth.ok()) {
      const MatchingMetrics m =
          EvaluateMatches(report.progressive.run.matches, *truth);
      const ClusterMetrics c = EvaluateClusters(report.progressive.run, *truth);
      std::printf("pairs:   precision %.4f recall %.4f F1 %.4f\n",
                  m.precision, m.recall, m.f1);
      std::printf("b-cubed: precision %.4f recall %.4f F1 %.4f\n",
                  c.bcubed_precision, c.bcubed_recall, c.bcubed_f1);
    }
  }

  const std::string out = flags.Get("out", "discovered_links.nt");
  const auto links =
      UniqueMappingClustering(report.progressive.run.matches, collection);
  std::ofstream stream(out);
  if (!stream) return Fail(Status::IoError("cannot write " + out));
  rdf::NTriplesWriter writer(stream);
  for (const MatchEvent& m : links) {
    writer.Write({rdf::Term::Iri(std::string(collection.EntityIri(m.a))),
                  rdf::Term::Iri(std::string(rdf::kOwlSameAs)),
                  rdf::Term::Iri(std::string(collection.EntityIri(m.b)))});
  }
  std::printf("wrote %zu links to %s\n", links.size(), out.c_str());
  return 0;
}

int CmdResolve(const Flags& flags) {
  if (!CheckFlags("resolve", flags, kResolveFlags)) return 2;
  if (flags.positional().empty()) {
    std::fprintf(stderr, "resolve requires a directory\n");
    return 2;
  }
  const std::string dir = flags.positional()[0];
  auto options = ParseWorkflowOptions("resolve", flags);
  if (!options.ok()) return Fail(options.status());
  auto collection = LoadDirectory(dir);
  if (!collection.ok()) return Fail(collection.status());

  StreamingObserver streamer(*collection);
  MatchObserver* observer = flags.Has("stream") ? &streamer : nullptr;
  auto session = ResolutionSession::Open(*collection, *options, observer);
  if (!session.ok()) return Fail(session.status());

  const uint64_t step_budget = flags.GetInt("step-budget", 0);
  if (step_budget == 0) {
    session->Step(0);
  } else {
    // Pay-as-you-go: spend the budget in increments. Byte-identical to the
    // one-shot run — the table below is the same either way. finished()
    // also covers the overall --budget cap (which is not exhaustion).
    uint32_t steps = 0;
    while (!session->finished()) {
      const StepResult step = session->Step(step_budget);
      ++steps;
      std::printf("step %-4u +%llu comparisons, +%zu matches "
                  "(%llu / %llu total)\n",
                  steps, static_cast<unsigned long long>(step.comparisons),
                  step.matches.size(),
                  static_cast<unsigned long long>(
                      session->comparisons_spent()),
                  static_cast<unsigned long long>(session->matches_found()));
    }
  }
  if (int rc = WriteObsOutputs(flags, *session); rc != 0) return rc;
  return ReportAndWriteLinks(dir, flags, *collection,
                             session->Report());
}

int CmdSession(const Flags& flags) {
  if (!CheckFlags("session", flags, kResolveFlags)) return 2;
  if (flags.positional().size() < 2) {
    std::fprintf(stderr,
                 "usage: minoan session checkpoint|resume DIR --state FILE "
                 "[--step-budget N] [resolve options]\n");
    return 2;
  }
  const std::string verb = flags.positional()[0];
  const std::string dir = flags.positional()[1];
  const std::string state_path = flags.Get("state", "");
  if (state_path.empty()) {
    std::fprintf(stderr, "session %s requires --state FILE\n", verb.c_str());
    return 2;
  }
  if (verb != "checkpoint" && verb != "resume") {
    std::fprintf(stderr, "unknown session verb: %s\n", verb.c_str());
    return 2;
  }
  auto options = ParseWorkflowOptions("session " + verb, flags);
  if (!options.ok()) return Fail(options.status());
  auto collection = LoadDirectory(dir);
  if (!collection.ok()) return Fail(collection.status());

  StreamingObserver streamer(*collection);
  MatchObserver* observer = flags.Has("stream") ? &streamer : nullptr;

  Result<ResolutionSession> session = Status::Internal("unset");
  if (verb == "checkpoint") {
    session = ResolutionSession::Open(*collection, *options, observer);
  } else {
    std::ifstream in(state_path, std::ios::binary);
    if (!in) return Fail(Status::IoError("cannot read " + state_path));
    session = ResolutionSession::Restore(*collection, *options, in, observer);
  }
  if (!session.ok()) return Fail(session.status());

  const uint64_t step_budget = flags.GetInt("step-budget", 10000);
  const StepResult step = session->Step(step_budget);
  std::printf("spent %llu comparisons, +%zu matches "
              "(%llu comparisons, %llu matches total)\n",
              static_cast<unsigned long long>(step.comparisons),
              step.matches.size(),
              static_cast<unsigned long long>(session->comparisons_spent()),
              static_cast<unsigned long long>(session->matches_found()));

  if (int rc = WriteObsOutputs(flags, *session); rc != 0) return rc;
  if (session->finished()) {
    std::printf("%s; final report:\n", session->exhausted()
                                           ? "queue drained"
                                           : "workflow budget consumed");
    return ReportAndWriteLinks(dir, flags, *collection, session->Report());
  }
  std::ofstream out(state_path, std::ios::binary | std::ios::trunc);
  if (!out) return Fail(Status::IoError("cannot write " + state_path));
  if (Status st = session->Checkpoint(out); !st.ok()) return Fail(st);
  out.close();
  std::printf("session state saved to %s — continue with:\n"
              "  minoan session resume %s --state %s\n",
              state_path.c_str(), dir.c_str(), state_path.c_str());
  return 0;
}

int CmdOnline(const Flags& flags) {
  if (!CheckFlags("online", flags,
                  {"script", "threshold", "pis", "seeds", "threads",
                   "benefit"})) {
    return 2;
  }
  if (flags.positional().empty()) {
    std::fprintf(stderr, "online requires a directory\n");
    return 2;
  }
  const std::string dir = flags.positional()[0];

  online::OnlineOptions options;
  options.matcher.threshold = flags.GetDouble("threshold", 0.35);
  options.blocking.use_pis_keys = flags.Has("pis");
  options.use_same_as_seeds = flags.Has("seeds");
  options.benefit = ParseBenefit(flags.Get("benefit", "quantity"));
  // --threads N: warm-start scoring workers (0 = hardware concurrency).
  // Deterministic: the resolution result is identical for every value.
  const uint64_t online_threads = flags.GetInt("threads", 1);
  if (online_threads > 1024) {
    std::fprintf(stderr,
                 "error: online: --threads must be in [0, 1024], got %llu\n",
                 static_cast<unsigned long long>(online_threads));
    return 2;
  }
  options.num_threads = static_cast<uint32_t>(online_threads);
  OnlineSession session(options);

  auto files = ListRdfFiles(dir);
  if (!files.ok()) return Fail(files.status());
  for (const std::string& file : *files) {
    auto source = session.AddSourceFile(file);
    if (!source.ok()) return Fail(source.status());
    std::printf("source %-26s %6zu entities queued\n",
                session.source_name(*source).c_str(),
                session.PendingEntities(*source));
  }

  const std::string script_path = flags.Get("script", "");
  Status status;
  if (script_path.empty()) {
    // Default serve loop: stream everything, resolve the whole queue.
    std::istringstream script(
        "ingest * all\n"
        "resolve 1000000000\n"
        "stats\n");
    status = session.RunScript(script, std::cout);
  } else {
    std::ifstream script(script_path);
    if (!script) {
      return Fail(Status::IoError("cannot read " + script_path));
    }
    status = session.RunScript(script, std::cout);
  }
  if (!status.ok()) return Fail(status);
  return 0;
}

/// Self-pipe for signal-driven shutdown: the handler only writes a byte;
/// the serve loop blocks reading the other end.
int g_shutdown_pipe[2] = {-1, -1};

void HandleShutdownSignal(int) {
  const char byte = 1;
  // Best effort; a full pipe means a shutdown is already pending.
  [[maybe_unused]] const ssize_t n = write(g_shutdown_pipe[1], &byte, 1);
}

int CmdServe(const Flags& flags) {
  if (!CheckFlags("serve", flags,
                  {"listen", "max-sessions", "evict-after", "state-dir",
                   "threads", "installment", "metrics-out", "stats-every",
                   "trace-out", "event-log", "slow-request-millis"})) {
    return 2;
  }
  server::ServerOptions options;
  const std::string listen = flags.Get("listen", "127.0.0.1:7411");
  const size_t colon = listen.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "error: --listen expects HOST:PORT, got \"%s\"\n",
                 listen.c_str());
    return 2;
  }
  options.host = listen.substr(0, colon);
  const uint64_t port = [&]() -> uint64_t {
    uint64_t v = 0;
    const std::string p = listen.substr(colon + 1);
    const auto [ptr, ec] = std::from_chars(p.data(), p.data() + p.size(), v);
    return (ec == std::errc() && ptr == p.data() + p.size() && v <= 65535)
               ? v
               : uint64_t{65536};
  }();
  if (port > 65535) {
    std::fprintf(stderr, "error: --listen port must be in [0, 65535]\n");
    return 2;
  }
  options.port = static_cast<uint16_t>(port);
  options.max_sessions = flags.GetInt("max-sessions", 64);
  options.evict_after_seconds = flags.GetDouble("evict-after", 0);
  options.state_dir = flags.Get("state-dir", "/tmp/minoan-serve");
  const uint64_t threads = flags.GetInt("threads", 1);
  if (threads > 1024) {
    std::fprintf(stderr, "error: serve: --threads must be in [0, 1024]\n");
    return 2;
  }
  options.num_threads = static_cast<uint32_t>(threads);
  options.installment = flags.GetInt("installment", 2048);
  // The observability plane: the server owns every export (rolling +
  // shutdown snapshots, trace, event log), so the files carry the
  // per-tenant breakdown the CLI could not reconstruct on its own.
  options.stats_path = flags.Get("metrics-out", "");
  options.stats_every_seconds = flags.GetDouble("stats-every", 0);
  options.trace_path = flags.Get("trace-out", "");
  options.event_log_path = flags.Get("event-log", "");
  options.slow_request_millis = flags.GetDouble("slow-request-millis", 250);
  if (options.stats_every_seconds > 0 && options.stats_path.empty() &&
      options.event_log_path.empty()) {
    std::fprintf(stderr,
                 "error: --stats-every needs --metrics-out or --event-log\n");
    return 2;
  }

  auto server = server::Server::Start(options);
  if (!server.ok()) return Fail(server.status());
  // CI and scripts parse this line for the resolved (port-0) port.
  std::printf("serving on %s:%u (state-dir %s, max-sessions %llu, "
              "evict-after %.3gs, threads %u)\n",
              options.host.c_str(), (*server)->port(),
              options.state_dir.c_str(),
              static_cast<unsigned long long>(options.max_sessions),
              options.evict_after_seconds,
              ResolveThreadCount(options.num_threads));
  std::fflush(stdout);

  if (pipe(g_shutdown_pipe) != 0) {
    return Fail(Status::IoError("cannot create shutdown pipe"));
  }
  std::signal(SIGINT, HandleShutdownSignal);
  std::signal(SIGTERM, HandleShutdownSignal);
  char byte = 0;
  while (read(g_shutdown_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::printf("shutting down\n");
  // Shutdown writes the final stats/trace/event-log installments itself.
  (*server)->Shutdown();
  if (!options.stats_path.empty()) {
    std::printf("wrote server stats to %s\n", options.stats_path.c_str());
  }
  if (!options.trace_path.empty()) {
    std::printf("wrote server trace to %s\n", options.trace_path.c_str());
  }
  if (!options.event_log_path.empty()) {
    std::printf("wrote server events to %s\n", options.event_log_path.c_str());
  }
  return 0;
}

/// Executes one `minoan connect` script command against the server.
/// Returns non-zero to stop the script (the exit code).
int RunConnectCommand(server::Client& client,
                      std::map<std::string, uint64_t>& sessions,
                      const std::vector<std::string>& tokens) {
  const auto session_of = [&](const std::string& name) -> Result<uint64_t> {
    const auto it = sessions.find(name);
    if (it == sessions.end()) {
      return Status::NotFound("no session handle '" + name +
                              "' (create one first)");
    }
    return it->second;
  };
  const std::string& cmd = tokens[0];
  if (cmd == "create") {
    // create <name> <batch|online> <source|-> <threshold> [tenant] [seeds]
    if (tokens.size() < 5) {
      return Fail(Status::InvalidArgument(
          "create needs: create <name> <batch|online> <source|-> "
          "<threshold> [tenant] [seeds]"));
    }
    const std::string& name = tokens[1];
    server::SessionKind kind;
    if (tokens[2] == "batch") {
      kind = server::SessionKind::kBatch;
    } else if (tokens[2] == "online") {
      kind = server::SessionKind::kOnline;
    } else {
      return Fail(Status::InvalidArgument("session kind must be batch or "
                                          "online, got " + tokens[2]));
    }
    const std::string source = tokens[3] == "-" ? "" : tokens[3];
    const double threshold = std::strtod(tokens[4].c_str(), nullptr);
    const std::string tenant = tokens.size() > 5 ? tokens[5] : name;
    const bool seeds = tokens.size() > 6 && tokens[6] == "seeds";
    auto id = client.CreateSession(tenant, kind, source, threshold, seeds);
    if (!id.ok()) return Fail(id.status());
    sessions[name] = *id;
    std::printf("created %s = session %llu\n", name.c_str(),
                static_cast<unsigned long long>(*id));
    return 0;
  }
  if (cmd == "step" || cmd == "resolve") {
    if (tokens.size() < 3) {
      return Fail(Status::InvalidArgument(cmd + " needs: " + cmd +
                                          " <name> <budget>"));
    }
    auto id = session_of(tokens[1]);
    if (!id.ok()) return Fail(id.status());
    const uint64_t budget = std::strtoull(tokens[2].c_str(), nullptr, 10);
    auto reply = cmd == "step" ? client.Step(*id, budget)
                               : client.ResolveBudget(*id, budget);
    if (!reply.ok()) return Fail(reply.status());
    std::printf("%s: +%llu comparisons, +%llu matches "
                "(total %llu/%llu)%s\n",
                tokens[1].c_str(),
                static_cast<unsigned long long>(reply->comparisons),
                static_cast<unsigned long long>(reply->matches),
                static_cast<unsigned long long>(reply->total_comparisons),
                static_cast<unsigned long long>(reply->total_matches),
                reply->finished ? ", finished" : "");
    return 0;
  }
  if (cmd == "matches") {
    if (tokens.size() < 2) {
      return Fail(Status::InvalidArgument("matches needs: matches <name>"));
    }
    auto id = session_of(tokens[1]);
    if (!id.ok()) return Fail(id.status());
    auto matches = client.Matches(*id);
    if (!matches.ok()) return Fail(matches.status());
    std::printf("%s: %zu matches\n", tokens[1].c_str(), matches->size());
    for (const MatchEvent& m : *matches) {
      std::printf("match %u %u %.6f @%llu\n", m.a, m.b, m.similarity,
                  static_cast<unsigned long long>(m.comparisons_done));
    }
    return 0;
  }
  if (cmd == "links") {
    // links <name> [file] — '-'/absent = stdout.
    if (tokens.size() < 2) {
      return Fail(Status::InvalidArgument("links needs: links <name> "
                                          "[file]"));
    }
    auto id = session_of(tokens[1]);
    if (!id.ok()) return Fail(id.status());
    auto text = client.Links(*id);
    if (!text.ok()) return Fail(text.status());
    if (tokens.size() > 2 && tokens[2] != "-") {
      std::ofstream out(tokens[2]);
      if (!out) return Fail(Status::IoError("cannot write " + tokens[2]));
      out << *text;
      std::printf("%s: wrote links to %s\n", tokens[1].c_str(),
                  tokens[2].c_str());
    } else {
      std::fputs(text->c_str(), stdout);
    }
    return 0;
  }
  if (cmd == "checkpoint") {
    if (tokens.size() < 2) {
      return Fail(Status::InvalidArgument("checkpoint needs: checkpoint "
                                          "<name>"));
    }
    auto id = session_of(tokens[1]);
    if (!id.ok()) return Fail(id.status());
    auto bytes = client.Checkpoint(*id);
    if (!bytes.ok()) return Fail(bytes.status());
    std::printf("%s: checkpointed %llu bytes\n", tokens[1].c_str(),
                static_cast<unsigned long long>(*bytes));
    return 0;
  }
  if (cmd == "close") {
    if (tokens.size() < 2) {
      return Fail(Status::InvalidArgument("close needs: close <name>"));
    }
    auto id = session_of(tokens[1]);
    if (!id.ok()) return Fail(id.status());
    if (Status st = client.Close(*id); !st.ok()) return Fail(st);
    sessions.erase(tokens[1]);
    std::printf("closed %s\n", tokens[1].c_str());
    return 0;
  }
  if (cmd == "ingest") {
    // ingest <name> <kb> <file> — sends the client-local N-Triples file.
    if (tokens.size() < 4) {
      return Fail(Status::InvalidArgument("ingest needs: ingest <name> "
                                          "<kb> <file>"));
    }
    auto id = session_of(tokens[1]);
    if (!id.ok()) return Fail(id.status());
    std::ifstream in(tokens[3]);
    if (!in) return Fail(Status::IoError("cannot read " + tokens[3]));
    std::ostringstream document;
    document << in.rdbuf();
    auto ids = client.Ingest(*id, tokens[2], document.str());
    if (!ids.ok()) return Fail(ids.status());
    std::printf("%s: ingested %zu entities into %s\n", tokens[1].c_str(),
                ids->size(), tokens[2].c_str());
    return 0;
  }
  if (cmd == "query") {
    if (tokens.size() < 4) {
      return Fail(Status::InvalidArgument("query needs: query <name> "
                                          "<entity> <k>"));
    }
    auto id = session_of(tokens[1]);
    if (!id.ok()) return Fail(id.status());
    const auto entity =
        static_cast<EntityId>(std::strtoul(tokens[2].c_str(), nullptr, 10));
    const auto k =
        static_cast<uint32_t>(std::strtoul(tokens[3].c_str(), nullptr, 10));
    auto candidates = client.Query(*id, entity, k);
    if (!candidates.ok()) return Fail(candidates.status());
    for (const auto& c : *candidates) {
      std::printf("candidate %u %.6f%s\n", c.id, c.similarity,
                  c.matched ? " matched" : "");
    }
    return 0;
  }
  if (cmd == "stats") {
    // stats [--full]: --full asks for the kStats v2 body (whole registry +
    // per-tenant breakdown); bare stats stays the legacy two-number reply.
    const bool full =
        tokens.size() > 1 && (tokens[1] == "--full" || tokens[1] == "full");
    if (!full) {
      auto stats = client.Stats();
      if (!stats.ok()) return Fail(stats.status());
      std::printf("sessions: %llu live / %llu total\n",
                  static_cast<unsigned long long>(stats->live_sessions),
                  static_cast<unsigned long long>(stats->total_sessions));
      return 0;
    }
    auto stats = client.StatsFull();
    if (!stats.ok()) return Fail(stats.status());
    std::printf("sessions: %llu live / %llu total\n",
                static_cast<unsigned long long>(stats->live_sessions),
                static_cast<unsigned long long>(stats->total_sessions));
    for (const auto& [name, value] : stats->counters) {
      std::printf("counter %s = %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    }
    for (const auto& [name, value] : stats->gauges) {
      std::printf("gauge %s = %lld\n", name.c_str(),
                  static_cast<long long>(value));
    }
    for (const auto& [name, h] : stats->histograms) {
      std::printf(
          "histogram %s count=%llu mean=%.1f p50=%.1f p95=%.1f p99=%.1f\n",
          name.c_str(), static_cast<unsigned long long>(h.count),
          h.count > 0 ? static_cast<double>(h.sum) /
                            static_cast<double>(h.count)
                      : 0.0,
          h.p50, h.p95, h.p99);
    }
    for (const auto& t : stats->tenants) {
      std::printf(
          "tenant %s: sessions=%llu requests=%llu comparisons=%llu "
          "matches=%llu spill_bytes=%llu request_micros p50=%.1f p95=%.1f "
          "p99=%.1f\n",
          t.tenant.c_str(), static_cast<unsigned long long>(t.sessions),
          static_cast<unsigned long long>(t.requests),
          static_cast<unsigned long long>(t.comparisons),
          static_cast<unsigned long long>(t.matches),
          static_cast<unsigned long long>(t.spill_bytes),
          t.p50_request_micros, t.p95_request_micros, t.p99_request_micros);
    }
    return 0;
  }
  if (cmd == "ping") {
    if (Status st = client.Ping(); !st.ok()) return Fail(st);
    std::printf("pong\n");
    return 0;
  }
  if (cmd == "sleep") {
    // Lets a smoke script idle past --evict-after to exercise eviction.
    if (tokens.size() < 2) {
      return Fail(Status::InvalidArgument("sleep needs: sleep <seconds>"));
    }
    const double seconds = std::strtod(tokens[1].c_str(), nullptr);
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    return 0;
  }
  return Fail(Status::InvalidArgument("unknown connect command: " + cmd));
}

int CmdConnect(const Flags& flags) {
  if (!CheckFlags("connect", flags, {"host", "port", "script"})) return 2;
  const std::string host = flags.Get("host", "127.0.0.1");
  const uint64_t port = flags.GetInt("port", 0);
  if (port == 0 || port > 65535) {
    std::fprintf(stderr, "connect requires --port (1..65535)\n");
    return 2;
  }
  auto client = server::Client::Connect(host, static_cast<uint16_t>(port));
  if (!client.ok()) return Fail(client.status());

  std::ifstream file;
  const std::string script_path = flags.Get("script", "");
  if (!script_path.empty()) {
    file.open(script_path);
    if (!file) return Fail(Status::IoError("cannot read " + script_path));
  }
  std::istream& in = script_path.empty() ? std::cin : file;

  std::map<std::string, uint64_t> sessions;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream tokenizer(line);
    std::vector<std::string> tokens;
    std::string token;
    while (tokenizer >> token) tokens.push_back(token);
    if (tokens.empty() || tokens[0][0] == '#') continue;
    if (int rc = RunConnectCommand(**client, sessions, tokens); rc != 0) {
      return rc;
    }
  }
  return 0;
}

void Usage() {
  std::fprintf(stderr,
               "usage: minoan <command> [options]\n"
               "  generate --out DIR [--entities N --kbs N --center N "
               "--seed S]\n"
               "  stats DIR\n"
               "  resolve DIR [--threshold F --budget N --benefit "
               "quantity|attr|coverage|relationship --seeds --threads N "
               "--pin-threads --filter-ratio F --step-budget N --stream "
               "--out FILE "
               "--blocker token|pis|attr-cluster|token+pis|qgram|sorted-nbhd "
               "--memory-budget N[k|m|g] --spill-dir DIR "
               "--metrics-out FILE --trace-out FILE --progress-every N]\n"
               "  session checkpoint|resume DIR --state FILE "
               "[--step-budget N + resolve options]\n"
               "  online DIR [--script FILE --threshold F --pis --seeds "
               "--threads N --benefit "
               "quantity|attr|coverage|relationship]\n"
               "  serve [--listen HOST:PORT --max-sessions N "
               "--evict-after SECONDS --state-dir DIR --threads N "
               "--installment N --metrics-out FILE --stats-every SECS "
               "--trace-out FILE --event-log FILE --slow-request-millis MS]\n"
               "  connect --port N [--host H --script FILE] "
               "(stats --full prints the per-tenant breakdown)\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const Flags flags(argc, argv, 2);
  if (std::strcmp(argv[1], "generate") == 0) return CmdGenerate(flags);
  if (std::strcmp(argv[1], "stats") == 0) return CmdStats(flags);
  if (std::strcmp(argv[1], "resolve") == 0) return CmdResolve(flags);
  if (std::strcmp(argv[1], "session") == 0) return CmdSession(flags);
  if (std::strcmp(argv[1], "online") == 0) return CmdOnline(flags);
  if (std::strcmp(argv[1], "serve") == 0) return CmdServe(flags);
  if (std::strcmp(argv[1], "connect") == 0) return CmdConnect(flags);
  Usage();
  return 2;
}
