// minoan — command-line front end to the MinoanER library.
//
//   minoan generate --out DIR [--entities N] [--kbs N] [--center N]
//                   [--seed S] [--periphery-overlap F]
//       Synthesizes a LOD cloud (N-Triples files + ground truth).
//
//   minoan stats DIR
//       Prints the cloud-structure statistics of the .nt/.ttl files in DIR.
//
//   minoan resolve DIR [--threshold F] [--budget N] [--benefit NAME]
//                  [--seeds] [--threads N] [--out FILE]
//       Resolves all KBs in DIR and writes discovered owl:sameAs links.
//       Scores against DIR/ground_truth.tsv when present.
//
//   minoan online DIR [--script FILE] [--threshold F] [--pis] [--seeds]
//                 [--benefit NAME]
//       Serves the KBs in DIR through the online incremental engine,
//       replaying an ingest/resolve/query command script (see
//       core/online_session.h for the grammar). Without --script, every
//       source is ingested, the queue is fully resolved, and stats print.
//
// All subcommands are deterministic for a fixed seed.

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/minoan_er.h"
#include "core/online_session.h"
#include "datagen/lod_generator.h"
#include "eval/cluster_metrics.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "kb/stats.h"
#include "matching/matcher.h"
#include "rdf/ntriples.h"
#include "rdf/turtle.h"
#include "util/table.h"

using namespace minoan;  // NOLINT

namespace {

/// Tiny flag parser: --name value and --name=value forms.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(std::move(arg));
        continue;
      }
      arg = arg.substr(2);
      const size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && argv[i + 1][0] != '-') {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "true";
      }
    }
  }

  std::string Get(const std::string& name, const std::string& fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& name, double fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : std::stod(it->second);
  }
  uint64_t GetInt(const std::string& name, uint64_t fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : std::stoull(it->second);
  }
  bool Has(const std::string& name) const { return values_.count(name) > 0; }
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

Result<std::vector<std::string>> ListRdfFiles(const std::string& dir) {
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string ext = entry.path().extension().string();
    if (ext == ".nt" || ext == ".ttl" || ext == ".turtle") {
      files.push_back(entry.path().string());
    }
  }
  if (ec) {
    return Status::IoError("cannot read directory " + dir + ": " +
                           ec.message());
  }
  if (files.empty()) {
    return Status::NotFound("no .nt/.ttl files in " + dir);
  }
  std::sort(files.begin(), files.end());
  return files;
}

Result<EntityCollection> LoadDirectory(const std::string& dir) {
  MINOAN_ASSIGN_OR_RETURN(std::vector<std::string> files, ListRdfFiles(dir));
  EntityCollection collection;
  for (const std::string& file : files) {
    MINOAN_ASSIGN_OR_RETURN(std::vector<rdf::Triple> triples,
                            rdf::LoadTriples(file));
    const std::string name = std::filesystem::path(file).stem().string();
    MINOAN_ASSIGN_OR_RETURN(uint32_t kb,
                            collection.AddKnowledgeBase(name, triples));
    std::printf("  %-26s %8zu triples -> KB %u\n", name.c_str(),
                triples.size(), kb);
  }
  MINOAN_RETURN_IF_ERROR(collection.Finalize());
  return collection;
}

int CmdGenerate(const Flags& flags) {
  const std::string out = flags.Get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "generate requires --out DIR\n");
    return 2;
  }
  datagen::LodCloudConfig config;
  config.seed = flags.GetInt("seed", 42);
  config.num_real_entities =
      static_cast<uint32_t>(flags.GetInt("entities", 2000));
  config.num_kbs = static_cast<uint32_t>(flags.GetInt("kbs", 6));
  config.center_kbs = static_cast<uint32_t>(flags.GetInt("center", 2));
  config.periphery_token_overlap =
      flags.GetDouble("periphery-overlap", config.periphery_token_overlap);
  config.same_as_rate = flags.GetDouble("sameas-rate", config.same_as_rate);
  auto cloud = datagen::GenerateLodCloud(config);
  if (!cloud.ok()) return Fail(cloud.status());
  if (Status st = cloud->WriteTo(out); !st.ok()) return Fail(st);
  std::printf("wrote %u KBs (%llu triples, %zu truth pairs) to %s\n",
              config.num_kbs,
              static_cast<unsigned long long>(cloud->total_triples()),
              cloud->truth.size(), out.c_str());
  return 0;
}

int CmdStats(const Flags& flags) {
  if (flags.positional().empty()) {
    std::fprintf(stderr, "stats requires a directory\n");
    return 2;
  }
  auto collection = LoadDirectory(flags.positional()[0]);
  if (!collection.ok()) return Fail(collection.status());
  const CloudStats stats = ComputeCloudStats(*collection);
  Table summary({"metric", "value"});
  summary.AddRow().Cell("knowledge bases").Cell(uint64_t{stats.num_kbs});
  summary.AddRow().Cell("descriptions").Cell(uint64_t{stats.num_entities});
  summary.AddRow().Cell("triples").Cell(stats.num_triples);
  summary.AddRow().Cell("owl:sameAs links").Cell(stats.num_same_as);
  summary.AddRow().Cell("vocabularies").Cell(uint64_t{stats.num_vocabularies});
  summary.AddRow()
      .Cell("proprietary vocabularies")
      .Cell(FormatPercent(stats.proprietary_ratio));
  summary.AddRow().Cell("link Gini").Cell(stats.link_gini, 3);
  summary.AddRow()
      .Cell("top-decile link share")
      .Cell(FormatPercent(stats.top_decile_link_share));
  summary.Print(std::cout);

  Table per_kb({"kb", "entities", "triples", "out_links", "in_links",
                "partners"});
  for (const KbLinkStats& kb : stats.per_kb) {
    per_kb.AddRow()
        .Cell(kb.name)
        .Cell(uint64_t{kb.entities})
        .Cell(kb.triples)
        .Cell(kb.out_links)
        .Cell(kb.in_links)
        .Cell(uint64_t{kb.linked_kbs});
  }
  per_kb.Print(std::cout);
  return 0;
}

BenefitModel ParseBenefit(const std::string& name) {
  if (name == "quantity") return BenefitModel::kQuantity;
  if (name == "attr") return BenefitModel::kAttributeCompleteness;
  if (name == "relationship") return BenefitModel::kRelationshipCompleteness;
  return BenefitModel::kEntityCoverage;
}

int CmdResolve(const Flags& flags) {
  if (flags.positional().empty()) {
    std::fprintf(stderr, "resolve requires a directory\n");
    return 2;
  }
  const std::string dir = flags.positional()[0];
  auto collection = LoadDirectory(dir);
  if (!collection.ok()) return Fail(collection.status());

  WorkflowOptions options;
  options.progressive.matcher.threshold = flags.GetDouble("threshold", 0.35);
  options.progressive.matcher.budget = flags.GetInt("budget", 0);
  options.progressive.benefit =
      ParseBenefit(flags.Get("benefit", "coverage"));
  options.use_same_as_seeds = flags.Has("seeds");
  // --threads N: workflow-wide worker count (0 = hardware concurrency).
  // Deterministic: the resolution result is identical for every value.
  const std::string threads_arg = flags.Get("threads", "1");
  uint64_t threads = 0;
  const auto [end, ec] = std::from_chars(
      threads_arg.data(), threads_arg.data() + threads_arg.size(), threads);
  if (ec != std::errc() || end != threads_arg.data() + threads_arg.size() ||
      threads > 1024) {
    std::fprintf(stderr,
                 "resolve: --threads must be an integer in [0, 1024], "
                 "got \"%s\"\n",
                 threads_arg.c_str());
    return 2;
  }
  options.num_threads = static_cast<uint32_t>(threads);

  MinoanEr er(options);
  auto report = er.Run(*collection);
  if (!report.ok()) return Fail(report.status());
  std::cout << report->Summary();

  const std::string truth_path = dir + "/ground_truth.tsv";
  if (std::filesystem::exists(truth_path)) {
    auto truth = GroundTruth::FromTsv(truth_path, *collection);
    if (truth.ok()) {
      const MatchingMetrics m =
          EvaluateMatches(report->progressive.run.matches, *truth);
      const ClusterMetrics c =
          EvaluateClusters(report->progressive.run, *truth);
      std::printf("pairs:   precision %.4f recall %.4f F1 %.4f\n",
                  m.precision, m.recall, m.f1);
      std::printf("b-cubed: precision %.4f recall %.4f F1 %.4f\n",
                  c.bcubed_precision, c.bcubed_recall, c.bcubed_f1);
    }
  }

  const std::string out = flags.Get("out", "discovered_links.nt");
  const auto links =
      UniqueMappingClustering(report->progressive.run.matches, *collection);
  std::ofstream stream(out);
  if (!stream) return Fail(Status::IoError("cannot write " + out));
  rdf::NTriplesWriter writer(stream);
  for (const MatchEvent& m : links) {
    writer.Write({rdf::Term::Iri(std::string(collection->EntityIri(m.a))),
                  rdf::Term::Iri(std::string(rdf::kOwlSameAs)),
                  rdf::Term::Iri(std::string(collection->EntityIri(m.b)))});
  }
  std::printf("wrote %zu links to %s\n", links.size(), out.c_str());
  return 0;
}

int CmdOnline(const Flags& flags) {
  if (flags.positional().empty()) {
    std::fprintf(stderr, "online requires a directory\n");
    return 2;
  }
  const std::string dir = flags.positional()[0];

  online::OnlineOptions options;
  options.matcher.threshold = flags.GetDouble("threshold", 0.35);
  options.blocking.use_pis_keys = flags.Has("pis");
  options.use_same_as_seeds = flags.Has("seeds");
  options.benefit = ParseBenefit(flags.Get("benefit", "quantity"));
  OnlineSession session(options);

  auto files = ListRdfFiles(dir);
  if (!files.ok()) return Fail(files.status());
  for (const std::string& file : *files) {
    auto source = session.AddSourceFile(file);
    if (!source.ok()) return Fail(source.status());
    std::printf("source %-26s %6zu entities queued\n",
                session.source_name(*source).c_str(),
                session.PendingEntities(*source));
  }

  const std::string script_path = flags.Get("script", "");
  Status status;
  if (script_path.empty()) {
    // Default serve loop: stream everything, resolve the whole queue.
    std::istringstream script(
        "ingest * all\n"
        "resolve 1000000000\n"
        "stats\n");
    status = session.RunScript(script, std::cout);
  } else {
    std::ifstream script(script_path);
    if (!script) {
      return Fail(Status::IoError("cannot read " + script_path));
    }
    status = session.RunScript(script, std::cout);
  }
  if (!status.ok()) return Fail(status);
  return 0;
}

void Usage() {
  std::fprintf(stderr,
               "usage: minoan <command> [options]\n"
               "  generate --out DIR [--entities N --kbs N --center N "
               "--seed S]\n"
               "  stats DIR\n"
               "  resolve DIR [--threshold F --budget N --benefit "
               "quantity|attr|coverage|relationship --seeds --threads N "
               "--out FILE]\n"
               "  online DIR [--script FILE --threshold F --pis --seeds "
               "--benefit quantity|attr|coverage|relationship]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const Flags flags(argc, argv, 2);
  if (std::strcmp(argv[1], "generate") == 0) return CmdGenerate(flags);
  if (std::strcmp(argv[1], "stats") == 0) return CmdStats(flags);
  if (std::strcmp(argv[1], "resolve") == 0) return CmdResolve(flags);
  if (std::strcmp(argv[1], "online") == 0) return CmdOnline(flags);
  Usage();
  return 2;
}
