// minoan — command-line front end to the MinoanER library.
//
//   minoan generate --out DIR [--entities N] [--kbs N] [--center N]
//                   [--seed S] [--periphery-overlap F]
//       Synthesizes a LOD cloud (N-Triples files + ground truth).
//
//   minoan stats DIR
//       Prints the cloud-structure statistics of the .nt/.ttl files in DIR.
//
//   minoan resolve DIR [--threshold F] [--budget N] [--benefit NAME]
//                  [--seeds] [--threads N] [--pin-threads]
//                  [--filter-ratio F] [--out FILE]
//                  [--step-budget N] [--stream]
//                  [--memory-budget BYTES] [--spill-dir DIR]
//                  [--metrics-out FILE] [--trace-out FILE]
//                  [--progress-every N]
//       Resolves all KBs in DIR and writes discovered owl:sameAs links.
//       Scores against DIR/ground_truth.tsv when present. With
//       --step-budget N the comparison budget is spent in increments of N
//       through the pay-as-you-go Session API (identical results); with
//       --stream every confirmed match is printed as it is discovered.
//       --memory-budget caps the RAM the blocking-postings and vote-shard
//       shuffles may hold (suffixes k/m/g accepted, e.g. 512m); overflow
//       spills sorted runs to temp files under --spill-dir (default: the
//       system temp dir) with byte-identical results.
//       Observability (out-of-band; results are identical with or without):
//       --metrics-out writes the flat stats JSON (per-phase wall times,
//       progressive-quality curve, pool utilization, spill counters, peak
//       RSS); --trace-out writes a Chrome-trace JSON of the phase spans
//       (load it in chrome://tracing or ui.perfetto.dev); --progress-every N
//       samples the quality curve every N comparisons (defaults to 1000
//       when --metrics-out is given, else off).
//
//   minoan session checkpoint DIR --state FILE [--step-budget N] [opts]
//   minoan session resume     DIR --state FILE [--step-budget N] [opts]
//       Budgeted resolution that survives process restarts: `checkpoint`
//       opens a session, spends --step-budget comparisons, and saves the
//       loop state to FILE; `resume` restores it (same DIR and options
//       required), spends the next increment, and re-saves — repeat until
//       the queue drains, at which point the final report prints. The match
//       sequence is byte-identical to one uninterrupted run.
//
//   minoan online DIR [--script FILE] [--threshold F] [--pis] [--seeds]
//                 [--threads N] [--benefit NAME]
//       Serves the KBs in DIR through the online incremental engine,
//       replaying an ingest/resolve/query command script (see
//       core/online_session.h for the grammar). Without --script, every
//       source is ingested, the queue is fully resolved, and stats print.
//
// All subcommands are deterministic for a fixed seed.

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/minoan_er.h"
#include "core/online_session.h"
#include "core/session.h"
#include "datagen/lod_generator.h"
#include "eval/cluster_metrics.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "kb/stats.h"
#include "matching/matcher.h"
#include "rdf/ntriples.h"
#include "rdf/turtle.h"
#include "util/table.h"

using namespace minoan;  // NOLINT

namespace {

/// Tiny flag parser: --name value and --name=value forms.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(std::move(arg));
        continue;
      }
      arg = arg.substr(2);
      const size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) !=
                                     0) {
        // Everything up to the next --flag is this flag's value; a single
        // leading dash is allowed so negative numbers parse as values.
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "true";
      }
    }
  }

  std::string Get(const std::string& name, const std::string& fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }
  /// Numeric accessors exit with a specific message on malformed input
  /// (never throw): "--threshold abc" is a usage error, not a crash.
  double GetDouble(const std::string& name, double fallback) const {
    auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0') {
      std::fprintf(stderr, "error: --%s expects a number, got \"%s\"\n",
                   name.c_str(), it->second.c_str());
      std::exit(2);
    }
    return v;
  }
  uint64_t GetInt(const std::string& name, uint64_t fallback) const {
    auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    uint64_t v = 0;
    const char* begin = it->second.data();
    const char* end = begin + it->second.size();
    const auto [ptr, ec] = std::from_chars(begin, end, v);
    if (ec != std::errc() || ptr != end) {
      std::fprintf(stderr,
                   "error: --%s expects a non-negative integer, got \"%s\"\n",
                   name.c_str(), it->second.c_str());
      std::exit(2);
    }
    return v;
  }
  /// Byte sizes: a non-negative integer with an optional k/m/g (or kb/mb/gb,
  /// case-insensitive) binary suffix — "65536", "64k", "1G".
  uint64_t GetByteSize(const std::string& name, uint64_t fallback) const {
    auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    const std::string& raw = it->second;
    uint64_t v = 0;
    const char* begin = raw.data();
    const char* end = begin + raw.size();
    const auto [ptr, ec] = std::from_chars(begin, end, v);
    uint64_t shift = 0;
    bool bad_suffix = false;
    std::string suffix(ptr, end);
    for (char& c : suffix) c = static_cast<char>(std::tolower(c));
    if (suffix == "k" || suffix == "kb") {
      shift = 10;
    } else if (suffix == "m" || suffix == "mb") {
      shift = 20;
    } else if (suffix == "g" || suffix == "gb") {
      shift = 30;
    } else if (!suffix.empty()) {
      bad_suffix = true;
    }
    if (ec != std::errc() || ptr == begin || bad_suffix ||
        (shift > 0 && v > (uint64_t{1} << (63 - shift)))) {
      std::fprintf(stderr,
                   "error: --%s expects a byte size like 65536, 64k or 1g, "
                   "got \"%s\"\n",
                   name.c_str(), raw.c_str());
      std::exit(2);
    }
    return v << shift;
  }
  bool Has(const std::string& name) const { return values_.count(name) > 0; }
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

Result<std::vector<std::string>> ListRdfFiles(const std::string& dir) {
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string ext = entry.path().extension().string();
    if (ext == ".nt" || ext == ".ttl" || ext == ".turtle") {
      files.push_back(entry.path().string());
    }
  }
  if (ec) {
    return Status::IoError("cannot read directory " + dir + ": " +
                           ec.message());
  }
  if (files.empty()) {
    return Status::NotFound("no .nt/.ttl files in " + dir);
  }
  std::sort(files.begin(), files.end());
  return files;
}

Result<EntityCollection> LoadDirectory(const std::string& dir) {
  MINOAN_ASSIGN_OR_RETURN(std::vector<std::string> files, ListRdfFiles(dir));
  EntityCollection collection;
  for (const std::string& file : files) {
    MINOAN_ASSIGN_OR_RETURN(std::vector<rdf::Triple> triples,
                            rdf::LoadTriples(file));
    const std::string name = std::filesystem::path(file).stem().string();
    MINOAN_ASSIGN_OR_RETURN(uint32_t kb,
                            collection.AddKnowledgeBase(name, triples));
    std::printf("  %-26s %8zu triples -> KB %u\n", name.c_str(),
                triples.size(), kb);
  }
  MINOAN_RETURN_IF_ERROR(collection.Finalize());
  return collection;
}

int CmdGenerate(const Flags& flags) {
  const std::string out = flags.Get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "generate requires --out DIR\n");
    return 2;
  }
  datagen::LodCloudConfig config;
  config.seed = flags.GetInt("seed", 42);
  config.num_real_entities =
      static_cast<uint32_t>(flags.GetInt("entities", 2000));
  config.num_kbs = static_cast<uint32_t>(flags.GetInt("kbs", 6));
  config.center_kbs = static_cast<uint32_t>(flags.GetInt("center", 2));
  config.periphery_token_overlap =
      flags.GetDouble("periphery-overlap", config.periphery_token_overlap);
  config.same_as_rate = flags.GetDouble("sameas-rate", config.same_as_rate);
  auto cloud = datagen::GenerateLodCloud(config);
  if (!cloud.ok()) return Fail(cloud.status());
  if (Status st = cloud->WriteTo(out); !st.ok()) return Fail(st);
  std::printf("wrote %u KBs (%llu triples, %zu truth pairs) to %s\n",
              config.num_kbs,
              static_cast<unsigned long long>(cloud->total_triples()),
              cloud->truth.size(), out.c_str());
  return 0;
}

int CmdStats(const Flags& flags) {
  if (flags.positional().empty()) {
    std::fprintf(stderr, "stats requires a directory\n");
    return 2;
  }
  auto collection = LoadDirectory(flags.positional()[0]);
  if (!collection.ok()) return Fail(collection.status());
  const CloudStats stats = ComputeCloudStats(*collection);
  Table summary({"metric", "value"});
  summary.AddRow().Cell("knowledge bases").Cell(uint64_t{stats.num_kbs});
  summary.AddRow().Cell("descriptions").Cell(uint64_t{stats.num_entities});
  summary.AddRow().Cell("triples").Cell(stats.num_triples);
  summary.AddRow().Cell("owl:sameAs links").Cell(stats.num_same_as);
  summary.AddRow().Cell("vocabularies").Cell(uint64_t{stats.num_vocabularies});
  summary.AddRow()
      .Cell("proprietary vocabularies")
      .Cell(FormatPercent(stats.proprietary_ratio));
  summary.AddRow().Cell("link Gini").Cell(stats.link_gini, 3);
  summary.AddRow()
      .Cell("top-decile link share")
      .Cell(FormatPercent(stats.top_decile_link_share));
  summary.Print(std::cout);

  Table per_kb({"kb", "entities", "triples", "out_links", "in_links",
                "partners"});
  for (const KbLinkStats& kb : stats.per_kb) {
    per_kb.AddRow()
        .Cell(kb.name)
        .Cell(uint64_t{kb.entities})
        .Cell(kb.triples)
        .Cell(kb.out_links)
        .Cell(kb.in_links)
        .Cell(uint64_t{kb.linked_kbs});
  }
  per_kb.Print(std::cout);
  return 0;
}

BenefitModel ParseBenefit(const std::string& name) {
  if (name == "quantity") return BenefitModel::kQuantity;
  if (name == "attr") return BenefitModel::kAttributeCompleteness;
  if (name == "relationship") return BenefitModel::kRelationshipCompleteness;
  return BenefitModel::kEntityCoverage;
}

/// Workflow options shared by `resolve` and `session`; exits via non-OK
/// Status on invalid flag values (specific message, non-zero exit code).
Result<WorkflowOptions> ParseWorkflowOptions(const std::string& verb,
                                             const Flags& flags) {
  WorkflowOptions options;
  options.progressive.matcher.threshold = flags.GetDouble("threshold", 0.35);
  options.progressive.matcher.budget = flags.GetInt("budget", 0);
  options.progressive.benefit =
      ParseBenefit(flags.Get("benefit", "coverage"));
  options.use_same_as_seeds = flags.Has("seeds");
  options.filter_ratio =
      flags.GetDouble("filter-ratio", options.filter_ratio);
  // --memory-budget N[k|m|g]: cap on the in-RAM shuffle state (blocking
  // postings + vote shards); overflow spills sorted runs under --spill-dir.
  // Deterministic: the resolution result is byte-identical either way.
  options.memory.shuffle_budget_bytes = flags.GetByteSize("memory-budget", 0);
  options.memory.spill_dir = flags.Get("spill-dir", "");
  if (!options.memory.spill_dir.empty() && !options.memory.enabled()) {
    return Status::InvalidArgument(
        verb + ": --spill-dir has no effect without --memory-budget");
  }
  // --threads N: workflow-wide worker count (0 = hardware concurrency).
  // Deterministic: the resolution result is identical for every value.
  const std::string threads_arg = flags.Get("threads", "1");
  uint64_t threads = 0;
  const auto [end, ec] = std::from_chars(
      threads_arg.data(), threads_arg.data() + threads_arg.size(), threads);
  if (ec != std::errc() || end != threads_arg.data() + threads_arg.size() ||
      threads > 1024) {
    return Status::InvalidArgument(verb +
                                   ": --threads must be an integer in "
                                   "[0, 1024], got \"" +
                                   threads_arg + "\"");
  }
  options.num_threads = static_cast<uint32_t>(threads);
  // --pin-threads: pin pool workers to cores (Linux; no-op elsewhere).
  // A cache-placement hint only — results are identical either way.
  options.pin_threads = flags.Has("pin-threads");
  // Observability: --trace-out switches phase-span recording on;
  // --progress-every sets the quality-curve cadence (default 1000 when a
  // metrics file was requested, so --metrics-out alone yields a curve).
  options.obs.enable_trace = flags.Has("trace-out");
  options.obs.progress_every =
      flags.GetInt("progress-every", flags.Has("metrics-out") ? 1000 : 0);
  if (Status st = options.Validate(); !st.ok()) {
    return Status(st.code(), verb + ": " + st.message());
  }
  return options;
}

/// Writes the --metrics-out / --trace-out files when requested. Called
/// after the run (resolve) or after the final/partial step (session).
int WriteObsOutputs(const Flags& flags, const ResolutionSession& session) {
  const std::string metrics_path = flags.Get("metrics-out", "");
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) return Fail(Status::IoError("cannot write " + metrics_path));
    session.WriteStatsJson(out);
    std::printf("wrote run stats to %s\n", metrics_path.c_str());
  }
  const std::string trace_path = flags.Get("trace-out", "");
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) return Fail(Status::IoError("cannot write " + trace_path));
    session.WriteTraceJson(out);
    std::printf("wrote phase trace to %s (open in chrome://tracing or "
                "ui.perfetto.dev)\n",
                trace_path.c_str());
  }
  return 0;
}

/// --stream sink: prints every confirmed match the moment it lands.
class StreamingObserver : public MatchObserver {
 public:
  explicit StreamingObserver(const EntityCollection& collection)
      : collection_(&collection) {}

  void OnPhase(const PhaseStats& phase) override {
    std::printf("phase %-22s %10.2f ms  %llu\n", phase.name.c_str(),
                phase.millis,
                static_cast<unsigned long long>(phase.output_cardinality));
  }

  void OnMatch(const MatchEvent& event) override {
    std::printf("match @%-8llu %.3f  %s  <->  %s\n",
                static_cast<unsigned long long>(event.comparisons_done),
                event.similarity,
                std::string(collection_->EntityIri(event.a)).c_str(),
                std::string(collection_->EntityIri(event.b)).c_str());
  }

 private:
  const EntityCollection* collection_;
};

/// Shared tail of `resolve` and `session resume`: summary, scoring against
/// ground truth when present, and the discovered-links file.
int ReportAndWriteLinks(const std::string& dir, const Flags& flags,
                        const EntityCollection& collection,
                        const ResolutionReport& report) {
  std::cout << report.Summary();

  const std::string truth_path = dir + "/ground_truth.tsv";
  if (std::filesystem::exists(truth_path)) {
    auto truth = GroundTruth::FromTsv(truth_path, collection);
    if (truth.ok()) {
      const MatchingMetrics m =
          EvaluateMatches(report.progressive.run.matches, *truth);
      const ClusterMetrics c = EvaluateClusters(report.progressive.run, *truth);
      std::printf("pairs:   precision %.4f recall %.4f F1 %.4f\n",
                  m.precision, m.recall, m.f1);
      std::printf("b-cubed: precision %.4f recall %.4f F1 %.4f\n",
                  c.bcubed_precision, c.bcubed_recall, c.bcubed_f1);
    }
  }

  const std::string out = flags.Get("out", "discovered_links.nt");
  const auto links =
      UniqueMappingClustering(report.progressive.run.matches, collection);
  std::ofstream stream(out);
  if (!stream) return Fail(Status::IoError("cannot write " + out));
  rdf::NTriplesWriter writer(stream);
  for (const MatchEvent& m : links) {
    writer.Write({rdf::Term::Iri(std::string(collection.EntityIri(m.a))),
                  rdf::Term::Iri(std::string(rdf::kOwlSameAs)),
                  rdf::Term::Iri(std::string(collection.EntityIri(m.b)))});
  }
  std::printf("wrote %zu links to %s\n", links.size(), out.c_str());
  return 0;
}

int CmdResolve(const Flags& flags) {
  if (flags.positional().empty()) {
    std::fprintf(stderr, "resolve requires a directory\n");
    return 2;
  }
  const std::string dir = flags.positional()[0];
  auto options = ParseWorkflowOptions("resolve", flags);
  if (!options.ok()) return Fail(options.status());
  auto collection = LoadDirectory(dir);
  if (!collection.ok()) return Fail(collection.status());

  StreamingObserver streamer(*collection);
  MatchObserver* observer = flags.Has("stream") ? &streamer : nullptr;
  auto session = ResolutionSession::Open(*collection, *options, observer);
  if (!session.ok()) return Fail(session.status());

  const uint64_t step_budget = flags.GetInt("step-budget", 0);
  if (step_budget == 0) {
    session->Step(0);
  } else {
    // Pay-as-you-go: spend the budget in increments. Byte-identical to the
    // one-shot run — the table below is the same either way. finished()
    // also covers the overall --budget cap (which is not exhaustion).
    uint32_t steps = 0;
    while (!session->finished()) {
      const StepResult step = session->Step(step_budget);
      ++steps;
      std::printf("step %-4u +%llu comparisons, +%zu matches "
                  "(%llu / %llu total)\n",
                  steps, static_cast<unsigned long long>(step.comparisons),
                  step.matches.size(),
                  static_cast<unsigned long long>(
                      session->comparisons_spent()),
                  static_cast<unsigned long long>(session->matches_found()));
    }
  }
  if (int rc = WriteObsOutputs(flags, *session); rc != 0) return rc;
  return ReportAndWriteLinks(dir, flags, *collection,
                             session->Report());
}

int CmdSession(const Flags& flags) {
  if (flags.positional().size() < 2) {
    std::fprintf(stderr,
                 "usage: minoan session checkpoint|resume DIR --state FILE "
                 "[--step-budget N] [resolve options]\n");
    return 2;
  }
  const std::string verb = flags.positional()[0];
  const std::string dir = flags.positional()[1];
  const std::string state_path = flags.Get("state", "");
  if (state_path.empty()) {
    std::fprintf(stderr, "session %s requires --state FILE\n", verb.c_str());
    return 2;
  }
  if (verb != "checkpoint" && verb != "resume") {
    std::fprintf(stderr, "unknown session verb: %s\n", verb.c_str());
    return 2;
  }
  auto options = ParseWorkflowOptions("session " + verb, flags);
  if (!options.ok()) return Fail(options.status());
  auto collection = LoadDirectory(dir);
  if (!collection.ok()) return Fail(collection.status());

  StreamingObserver streamer(*collection);
  MatchObserver* observer = flags.Has("stream") ? &streamer : nullptr;

  Result<ResolutionSession> session = Status::Internal("unset");
  if (verb == "checkpoint") {
    session = ResolutionSession::Open(*collection, *options, observer);
  } else {
    std::ifstream in(state_path, std::ios::binary);
    if (!in) return Fail(Status::IoError("cannot read " + state_path));
    session = ResolutionSession::Restore(*collection, *options, in, observer);
  }
  if (!session.ok()) return Fail(session.status());

  const uint64_t step_budget = flags.GetInt("step-budget", 10000);
  const StepResult step = session->Step(step_budget);
  std::printf("spent %llu comparisons, +%zu matches "
              "(%llu comparisons, %llu matches total)\n",
              static_cast<unsigned long long>(step.comparisons),
              step.matches.size(),
              static_cast<unsigned long long>(session->comparisons_spent()),
              static_cast<unsigned long long>(session->matches_found()));

  if (int rc = WriteObsOutputs(flags, *session); rc != 0) return rc;
  if (session->finished()) {
    std::printf("%s; final report:\n", session->exhausted()
                                           ? "queue drained"
                                           : "workflow budget consumed");
    return ReportAndWriteLinks(dir, flags, *collection, session->Report());
  }
  std::ofstream out(state_path, std::ios::binary | std::ios::trunc);
  if (!out) return Fail(Status::IoError("cannot write " + state_path));
  if (Status st = session->Checkpoint(out); !st.ok()) return Fail(st);
  out.close();
  std::printf("session state saved to %s — continue with:\n"
              "  minoan session resume %s --state %s\n",
              state_path.c_str(), dir.c_str(), state_path.c_str());
  return 0;
}

int CmdOnline(const Flags& flags) {
  if (flags.positional().empty()) {
    std::fprintf(stderr, "online requires a directory\n");
    return 2;
  }
  const std::string dir = flags.positional()[0];

  online::OnlineOptions options;
  options.matcher.threshold = flags.GetDouble("threshold", 0.35);
  options.blocking.use_pis_keys = flags.Has("pis");
  options.use_same_as_seeds = flags.Has("seeds");
  options.benefit = ParseBenefit(flags.Get("benefit", "quantity"));
  // --threads N: warm-start scoring workers (0 = hardware concurrency).
  // Deterministic: the resolution result is identical for every value.
  const uint64_t online_threads = flags.GetInt("threads", 1);
  if (online_threads > 1024) {
    std::fprintf(stderr,
                 "error: online: --threads must be in [0, 1024], got %llu\n",
                 static_cast<unsigned long long>(online_threads));
    return 2;
  }
  options.num_threads = static_cast<uint32_t>(online_threads);
  OnlineSession session(options);

  auto files = ListRdfFiles(dir);
  if (!files.ok()) return Fail(files.status());
  for (const std::string& file : *files) {
    auto source = session.AddSourceFile(file);
    if (!source.ok()) return Fail(source.status());
    std::printf("source %-26s %6zu entities queued\n",
                session.source_name(*source).c_str(),
                session.PendingEntities(*source));
  }

  const std::string script_path = flags.Get("script", "");
  Status status;
  if (script_path.empty()) {
    // Default serve loop: stream everything, resolve the whole queue.
    std::istringstream script(
        "ingest * all\n"
        "resolve 1000000000\n"
        "stats\n");
    status = session.RunScript(script, std::cout);
  } else {
    std::ifstream script(script_path);
    if (!script) {
      return Fail(Status::IoError("cannot read " + script_path));
    }
    status = session.RunScript(script, std::cout);
  }
  if (!status.ok()) return Fail(status);
  return 0;
}

void Usage() {
  std::fprintf(stderr,
               "usage: minoan <command> [options]\n"
               "  generate --out DIR [--entities N --kbs N --center N "
               "--seed S]\n"
               "  stats DIR\n"
               "  resolve DIR [--threshold F --budget N --benefit "
               "quantity|attr|coverage|relationship --seeds --threads N "
               "--pin-threads --filter-ratio F --step-budget N --stream "
               "--out FILE "
               "--memory-budget N[k|m|g] --spill-dir DIR "
               "--metrics-out FILE --trace-out FILE --progress-every N]\n"
               "  session checkpoint|resume DIR --state FILE "
               "[--step-budget N + resolve options]\n"
               "  online DIR [--script FILE --threshold F --pis --seeds "
               "--threads N --benefit "
               "quantity|attr|coverage|relationship]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const Flags flags(argc, argv, 2);
  if (std::strcmp(argv[1], "generate") == 0) return CmdGenerate(flags);
  if (std::strcmp(argv[1], "stats") == 0) return CmdStats(flags);
  if (std::strcmp(argv[1], "resolve") == 0) return CmdResolve(flags);
  if (std::strcmp(argv[1], "session") == 0) return CmdSession(flags);
  if (std::strcmp(argv[1], "online") == 0) return CmdOnline(flags);
  Usage();
  return 2;
}
