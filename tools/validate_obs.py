#!/usr/bin/env python3
"""CI validator for the observability outputs of `minoan resolve`.

Checks the two files the CLI writes:

  --metrics-out metrics.json   flat stats (schema minoan-stats-v1)
  --trace-out trace.json       Chrome-trace JSON (chrome://tracing,
                               ui.perfetto.dev)

Usage (the CI smoke run):

  tools/validate_obs.py --metrics metrics.json --trace trace.json \
      --expect-spill --expect-progress

With --server the file under --metrics is the one `minoan serve
--metrics-out` writes at shutdown: same minoan-stats-v1 schema, but the
pipeline-phase/pool/trace requirements are dropped (a daemon has no static
pipeline of its own) and the server.* request/session counters plus the
request-latency and checkpoint-size histograms must show real traffic.

With --tenant the per-tenant breakdown the server embeds under "tenants"
is validated: every field a non-negative integer, request-latency
quantiles monotone (p50 <= p95 <= p99), every histogram's quantiles
inside its [min, max] envelope, and the tenant sums of comparisons /
matches / sessions no larger than the matching process-wide server.*
counters (they are dual-written at the same instrumentation site, so a
sum exceeding its total means scoping is broken). --tenant composes with
--server for the shutdown file and stands alone (with --no-trace) for
mid-run rolling snapshots, where the traffic counters may not have
settled yet.

The trace check enforces the Chrome Trace Event format contract every
viewer relies on: a "traceEvents" array of complete ("ph":"X") events,
each with name / integer ts / non-negative dur / pid / tid, so the file is
loadable in Perfetto without guessing. The stats check enforces the
minoan-stats-v1 shape: every static pipeline phase timed, non-empty
counters with the blocking/prune signals, pool utilization consistent with
the worker vector, and a positive peak RSS. --expect-spill requires the
spill.* counters to show actual spill activity (the smoke run forces it
with a tiny --memory-budget); --expect-progress requires a non-empty
progressive-quality curve with internally consistent samples.

Exit 0 when everything holds; exit 1 listing every violation otherwise.
"""

import argparse
import json
import sys

# Static phases the session must have timed, in pipeline order.
EXPECTED_PHASES = (
    "blocking",
    "block-cleaning",
    "meta-blocking",
    "graph+evaluator",
)

# Counters every instrumented resolve run must report (non-zero).
EXPECTED_COUNTERS = (
    "blocking.chunks",
    "blocking.postings",
    "prune.chunks",
    "prune.retained",
)

SPILL_COUNTERS = ("spill.runs", "spill.bytes", "spill.sinks_spilled")

# Counters a served smoke run must report (non-zero): requests were
# answered, sessions were created, and eviction + transparent restore
# actually happened.
SERVER_COUNTERS = (
    "server.requests.create",
    "server.requests.step",
    "server.comparisons",
    "server.sessions.created",
    "server.sessions.evicted",
    "server.sessions.restored",
)

SERVER_HISTOGRAMS = ("server.request_micros", "server.checkpoint_bytes")


def load(path, problems):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        problems.append(f"cannot read {path}: {err}")
        return None


def check_trace(trace, problems):
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        problems.append("trace: traceEvents missing or not an array")
        return
    if not events:
        problems.append("trace: no events recorded (was --trace-out passed?)")
        return
    names = set()
    for i, event in enumerate(events):
        where = f"trace: event {i}"
        if not isinstance(event.get("name"), str) or not event.get("name"):
            problems.append(f"{where}: missing name")
            continue
        names.add(event["name"])
        if event.get("ph") != "X":
            problems.append(f"{where}: ph must be 'X' (complete event)")
        for field in ("ts", "dur", "pid", "tid"):
            if not isinstance(event.get(field), int) or event[field] < 0:
                problems.append(
                    f"{where}: {field} must be a non-negative integer"
                )
        args = event.get("args")
        if not isinstance(args, dict) or "depth" not in args:
            problems.append(f"{where}: args.depth missing")
    for phase in EXPECTED_PHASES:
        if phase not in names:
            problems.append(f"trace: no span named {phase!r}")
    if "open" not in names:
        problems.append("trace: no enclosing 'open' span")


def check_stats(stats, problems, expect_spill, expect_progress):
    if stats.get("schema") != "minoan-stats-v1":
        problems.append(
            f"stats: schema is {stats.get('schema')!r}, "
            "expected 'minoan-stats-v1'"
        )
    phase_names = [p.get("name") for p in stats.get("phases", [])]
    for phase in EXPECTED_PHASES:
        if phase not in phase_names:
            problems.append(f"stats: phase {phase!r} missing")
    for phase in stats.get("phases", []):
        if phase.get("millis", -1) < 0:
            problems.append(f"stats: phase {phase.get('name')!r} has no "
                            "wall time")

    counters = stats.get("counters", {})
    for name in EXPECTED_COUNTERS:
        if not counters.get(name):
            problems.append(f"stats: counter {name!r} missing or zero")
    if expect_spill:
        for name in SPILL_COUNTERS:
            if not counters.get(name):
                problems.append(
                    f"stats: counter {name!r} missing or zero — the smoke "
                    "run must force spilling with a tiny --memory-budget"
                )

    pool = stats.get("pool", {})
    workers = pool.get("worker_busy_micros")
    if not isinstance(workers, list):
        problems.append("stats: pool.worker_busy_micros missing")
    elif pool.get("busy_micros_total") != sum(workers):
        problems.append("stats: pool.busy_micros_total does not equal the "
                        "sum of worker_busy_micros")

    progress = stats.get("progress", [])
    if expect_progress:
        if not progress:
            problems.append("stats: progress curve empty — pass "
                            "--progress-every to the smoke run")
        prev = None
        for i, sample in enumerate(progress):
            comparisons = sample.get("comparisons", -1)
            matches = sample.get("matches", -1)
            if comparisons < 0 or matches < 0:
                problems.append(f"stats: progress sample {i} malformed")
                continue
            if matches > comparisons:
                problems.append(
                    f"stats: progress sample {i} reports more matches than "
                    "comparisons"
                )
            if prev is not None and (
                comparisons <= prev["comparisons"]
                or matches < prev["matches"]
            ):
                problems.append(
                    f"stats: progress sample {i} is not monotone"
                )
            prev = sample

    if stats.get("peak_rss_bytes", 0) <= 0:
        problems.append("stats: peak_rss_bytes missing or zero")


def check_server_stats(stats, problems):
    if stats.get("schema") != "minoan-stats-v1":
        problems.append(
            f"stats: schema is {stats.get('schema')!r}, "
            "expected 'minoan-stats-v1'"
        )
    counters = stats.get("counters", {})
    for name in SERVER_COUNTERS:
        if not counters.get(name):
            problems.append(
                f"stats: counter {name!r} missing or zero — the smoke "
                "script must create, step, and idle a session past "
                "--evict-after before resuming it"
            )
    histograms = stats.get("histograms", {})
    for name in SERVER_HISTOGRAMS:
        hist = histograms.get(name)
        if not isinstance(hist, dict) or hist.get("count", 0) <= 0:
            problems.append(f"stats: histogram {name!r} missing or empty")
        elif hist.get("min", -1) < 0 or hist.get("max", -1) < hist["min"]:
            problems.append(f"stats: histogram {name!r} malformed")
    gauges = stats.get("gauges", {})
    if "server.sessions.live" not in gauges:
        problems.append("stats: gauge 'server.sessions.live' missing")
    if stats.get("peak_rss_bytes", 0) <= 0:
        problems.append("stats: peak_rss_bytes missing or zero")


def check_tenants(stats, problems):
    tenants = stats.get("tenants")
    if not isinstance(tenants, dict):
        problems.append("stats: 'tenants' missing or not an object — was "
                        "the file written by a server with per-tenant "
                        "scoping?")
        return
    int_fields = ("sessions", "requests", "comparisons", "matches",
                  "spill_bytes")
    sums = {field: 0 for field in int_fields}
    for name, tenant in sorted(tenants.items()):
        where = f"stats: tenant {name!r}"
        if not isinstance(tenant, dict):
            problems.append(f"{where}: not an object")
            continue
        for field in int_fields:
            value = tenant.get(field)
            if not isinstance(value, int) or value < 0:
                problems.append(
                    f"{where}: {field} must be a non-negative integer"
                )
            else:
                sums[field] += value
        micros = tenant.get("request_micros")
        if not isinstance(micros, dict):
            problems.append(f"{where}: request_micros missing")
            continue
        quantiles = [micros.get(q) for q in ("p50", "p95", "p99")]
        if not all(isinstance(q, (int, float)) and q >= 0
                   for q in quantiles):
            problems.append(f"{where}: request_micros quantiles malformed")
        elif not quantiles[0] <= quantiles[1] <= quantiles[2]:
            problems.append(
                f"{where}: request_micros quantiles not monotone "
                f"(p50={quantiles[0]} p95={quantiles[1]} "
                f"p99={quantiles[2]})"
            )
    # The per-tenant counters are dual-written at the same site as the
    # process totals, so the tenant sums can never exceed them. (Equality
    # is not required here: the process counter may also count traffic
    # from before a tenant map reset, and spill attribution is sampled.)
    counters = stats.get("counters", {})
    for field, total_name in (
        ("comparisons", "server.comparisons"),
        ("matches", "server.matches"),
        ("sessions", "server.sessions.created"),
    ):
        total = counters.get(total_name, 0)
        if sums[field] > total:
            problems.append(
                f"stats: tenant {field} sum {sums[field]} exceeds "
                f"process counter {total_name!r} = {total}"
            )
    # Quantiles of every histogram must sit inside the [min, max]
    # envelope and be monotone in q.
    for name, hist in sorted(stats.get("histograms", {}).items()):
        if not isinstance(hist, dict) or hist.get("count", 0) <= 0:
            continue
        quantiles = [hist.get(q) for q in ("p50", "p95", "p99")]
        if not all(isinstance(q, (int, float)) for q in quantiles):
            problems.append(f"stats: histogram {name!r} lacks quantiles")
            continue
        if not quantiles[0] <= quantiles[1] <= quantiles[2]:
            problems.append(
                f"stats: histogram {name!r} quantiles not monotone"
            )
        if quantiles[0] < hist.get("min", 0) or \
                quantiles[2] > hist.get("max", 0):
            problems.append(
                f"stats: histogram {name!r} quantiles escape the "
                "[min, max] envelope"
            )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--metrics", required=True,
                        help="--metrics-out file (minoan-stats-v1)")
    parser.add_argument("--trace",
                        help="--trace-out file (Chrome-trace JSON); "
                             "required unless --server")
    parser.add_argument("--expect-spill", action="store_true",
                        help="require non-zero spill.* counters")
    parser.add_argument("--expect-progress", action="store_true",
                        help="require a non-empty quality curve")
    parser.add_argument("--server", action="store_true",
                        help="validate a `minoan serve --metrics-out` file "
                             "(server.* counters; no trace/phase checks)")
    parser.add_argument("--no-trace", action="store_true",
                        help="validate the stats file alone (runs that "
                             "did not pass --trace-out, e.g. the "
                             "out-of-core stress job)")
    parser.add_argument("--tenant", action="store_true",
                        help="validate the per-tenant breakdown and "
                             "histogram quantiles (server stats files; "
                             "composes with --server, or stands alone "
                             "for mid-run rolling snapshots)")
    args = parser.parse_args()
    if not args.server and not args.trace and not args.no_trace:
        parser.error("--trace is required unless --server or --no-trace")

    problems = []
    stats = load(args.metrics, problems)
    trace = load(args.trace, problems) if args.trace else None
    if stats is not None:
        if args.server:
            check_server_stats(stats, problems)
        elif not args.tenant:
            check_stats(stats, problems, args.expect_spill,
                        args.expect_progress)
        if args.tenant:
            check_tenants(stats, problems)
    if trace is not None:
        check_trace(trace, problems)

    if problems:
        for problem in problems:
            print(f"validate_obs: FAIL: {problem}", file=sys.stderr)
        return 1
    counters = len(stats.get("counters", {}))
    events = len(trace.get("traceEvents", [])) if trace is not None else 0
    print(f"validate_obs: OK ({events} trace events, {counters} counters, "
          f"{len(stats.get('progress', []))} progress samples)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
